//! The cycle-level out-of-order core.
//!
//! The model reproduces the pipeline behaviours the paper's results hinge
//! on, with the Table 1 structural limits:
//!
//! * in-order dispatch (5-wide) into a 224-entry ROB, out-of-order
//!   completion, in-order retirement (5-wide);
//! * load/store queues (72/56 entries) with store-to-load forwarding;
//!   stores are *posted*: they retire into the store queue and release to
//!   the cache in order, subject to the write-ahead constraint;
//! * `clwb` executes after retirement, ordered behind older stores to the
//!   same line, and completes when the WPQ acknowledges it (ADR);
//! * `sfence`/`pcommit` gate retirement until all older persists are
//!   durable, and block dispatch of younger stores and PMEM operations;
//! * the Proteus structures: LR file, LogQ (program-order log-to
//!   assignment, concurrent flushes), LLT elision, `tx-end` handshake with
//!   the memory controller;
//! * the ATOM engine: a transactional store at the ROB head creates a log
//!   entry at the memory controller and *cannot retire* until the entry is
//!   acknowledged — the serialisation that costs ATOM its 12% extra
//!   front-end stalls (Fig. 7).

use crate::llt::Llt;
use crate::logq::{LogQ, LogRegFile};
use proteus_cache::{CacheAccess, LookupResult};
use proteus_core::entry::LogEntry;
use proteus_core::isa::{Trace, Uop};
use proteus_core::layout::AddressLayout;
use proteus_core::logarea::LogArea;
use proteus_core::pmem::LineData;
use proteus_core::scheme::registry::{self, CorePolicy};
use proteus_mem::{McEvent, McRequest};
use proteus_trace::{CommitWait, QueueId, TraceEventKind, Tracer, TrackDump, TxRecord};
use proteus_types::addr::{LineAddr, LogGrainAddr};
use proteus_types::clock::Cycle;
use proteus_types::config::{LoggingSchemeKind, SystemConfig};
use proteus_types::stats::{CoreStats, StallCause};
use proteus_types::{Addr, CoreId, FastMap, FastSet, ThreadId, TxId};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// One-way latency from the L3 miss point to the memory controller.
pub const MC_LINK_DELAY: Cycle = 10;
/// Path latency of a request that traverses the cache hierarchy first
/// (miss fetch, write-back, clwb flush): L3 lookup plus the link.
pub const MISS_PATH_DELAY: Cycle = 42 + MC_LINK_DELAY;
/// Path latency of an uncacheable request (log-flush, ATOM log, tx-end):
/// straight from the core across the chip to the controller, bypassing
/// the caches but not the interconnect (~25 cycles one way at the
/// Table 1 L3-MC bandwidth). The round trip is what delays an ATOM
/// store's retirement; Proteus overlaps it in the LogQ.
pub const UNCACHED_DELAY: Cycle = 25;

/// Encodes a per-core-unique correlation id into a globally unique one.
pub fn encode_id(core: CoreId, local: u64) -> u64 {
    ((core.raw() as u64) << 48) | (local & 0xFFFF_FFFF_FFFF)
}

/// Recovers the issuing core from a correlation id.
pub fn decode_core(id: u64) -> CoreId {
    CoreId::new((id >> 48) as u32)
}

/// Recovers the core-local part of a correlation id.
pub fn decode_local(id: u64) -> u64 {
    id & 0xFFFF_FFFF_FFFF
}

/// The coherence-domain address a uop touches, if any. `wait-value`
/// always polls a struct lock; the other memory uops count only when
/// their address falls inside the static sharing domain.
fn uop_domain_addr(uop: &Uop) -> Option<Addr> {
    let addr = match *uop {
        Uop::Load { addr, .. }
        | Uop::Store { addr, .. }
        | Uop::Clwb { addr }
        | Uop::LogLoad { addr, .. }
        | Uop::WaitValue { addr, .. } => addr,
        _ => return None,
    };
    proteus_types::sharing::in_coherence_domain(addr).then_some(addr)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FenceProgress {
    Waiting,
    Sent,
    Done,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AtomProgress {
    NeedLine,
    WaitAck,
    Done,
}

#[derive(Debug, Clone)]
enum UopState {
    None,
    /// Load or log-load waiting on a memory fetch.
    WaitMem,
    /// Dependent load parked until all older loads complete (pointer
    /// chasing).
    WaitDeps,
    /// sfence / pcommit / tx-end retirement gating.
    Fence(FenceProgress),
    /// ATOM store logging at the ROB head.
    Atom(AtomProgress),
    /// Proteus log-flush bookkeeping.
    LogFlush {
        logq_id: Option<u64>,
        elided: bool,
    },
    /// Proteus log-load waiting on its grain fetch.
    LogLoad,
}

#[derive(Debug)]
struct RobEntry {
    seq: u64,
    uop: Uop,
    completed: bool,
    state: UopState,
}

#[derive(Debug, Clone, Copy)]
struct StoreEntry {
    seq: u64,
    addr: Addr,
    value: u64,
    retired: bool,
}

#[derive(Debug, Clone)]
struct PendingClwb {
    addr: Addr,
    performed: bool,
    ack_id: Option<u64>,
}

#[derive(Debug, Default)]
struct MshrEntry {
    load_waiters: Vec<u64>,
    logload_waiters: Vec<(u64, usize)>, // (seq, lr)
}

/// A ready log flush buffered locally by the `disable_persist_ordering`
/// fault knob instead of being sent to the memory controller.
#[derive(Debug, Clone)]
struct HeldFlush {
    id: u64,
    slot: Addr,
    words: [u64; 8],
    tx: TxId,
}

/// Trace-only bookkeeping for the transaction currently in flight:
/// the raw material of its persist critical-path record. Maintained
/// only while a tracer is attached — pure observation, never consulted
/// by the pipeline.
#[derive(Debug)]
struct TxPath {
    tx: TxId,
    begin: Cycle,
    last_store: Option<Cycle>,
    commit_request: Option<Cycle>,
    wait: CommitWait,
}

/// A single out-of-order core executing one thread's trace.
#[derive(Debug)]
pub struct Core {
    id: CoreId,
    thread: ThreadId,
    /// Retirement/ordering gates from the scheme's registry descriptor.
    policy: CorePolicy,
    width: usize,
    rob_entries: usize,
    issueq_entries: usize,
    loadq_entries: usize,
    storeq_entries: usize,
    l1_latency: Cycle,

    trace: Trace,
    pc: usize,
    /// Trace indices of uops addressing the coherence domain, in program
    /// order (empty for single-owner workloads). Drives
    /// [`Core::domain_quiet_horizon`], the parallel engine's bound on how
    /// far this core can run without a coherence-visible access.
    domain_uops: Vec<u32>,

    rob: VecDeque<RobEntry>,
    next_seq: u64,
    completions: BinaryHeap<Reverse<(Cycle, u64)>>,
    inflight_exec: usize,
    loads_in_rob: usize,

    storeq: VecDeque<StoreEntry>,
    stores_retired_seq: u64,
    /// Unreleased-store count per line (clwb ordering checks in O(1)).
    storeq_lines: FastMap<u64, u32>,
    /// Completion time of the most recent compute op: scalar application
    /// code is a serial dependency chain.
    last_compute_done: Cycle,

    pending_clwbs: Vec<PendingClwb>,
    fence_active: bool,

    llt: Llt,
    logq: LogQ,
    lrs: LogRegFile,
    logarea: LogArea,
    current_tx: Option<TxId>,
    flush_meta: FastMap<u64, (usize, u64, TxId)>, // logq_id -> (lr, entry seq, tx)
    /// Fault-injection knob (see `ProteusHwConfig::disable_persist_ordering`):
    /// stores skip the write-ahead gate and ready flushes are buffered in
    /// `held_flushes` until the commit fence instead of being sent.
    persist_ordering_disabled: bool,
    held_flushes: Vec<HeldFlush>,

    atom_logged: FastSet<u64>,
    atom_acks_outstanding: usize,

    mshr: FastMap<u64, MshrEntry>,
    req_lines: FastMap<u64, LineAddr>,
    incomplete_loads: std::collections::BTreeSet<u64>,
    parked_loads: Vec<u64>,
    next_local_id: u64,

    out: Vec<(Cycle, McRequest)>,
    /// Reusable eviction buffer for cache calls (no per-cycle allocation).
    wb_scratch: Vec<(LineAddr, LineData)>,
    /// Successful `wait-value` ticket acquires (contended workloads; the
    /// simulator merges these into the run's coherence statistics).
    lock_acquires: u64,
    stats: CoreStats,
    done_at: Option<Cycle>,

    tracer: Tracer,
    tx_path: Option<TxPath>,
}

impl Core {
    /// Creates a core executing `trace` under `scheme`.
    pub fn new(
        id: CoreId,
        cfg: &SystemConfig,
        scheme: LoggingSchemeKind,
        layout: &AddressLayout,
        trace: Trace,
    ) -> Self {
        let thread = trace.thread;
        let policy = registry::descriptor(scheme).core;
        let domain_uops = trace
            .uops
            .iter()
            .enumerate()
            .filter(|(_, u)| uop_domain_addr(u).is_some())
            .map(|(i, _)| i as u32)
            .collect();
        Core {
            id,
            thread,
            policy,
            width: cfg.cores.width,
            rob_entries: cfg.cores.rob_entries,
            issueq_entries: cfg.cores.issueq_entries,
            loadq_entries: cfg.cores.loadq_entries,
            storeq_entries: cfg.cores.storeq_entries,
            l1_latency: cfg.caches.l1d.latency,
            trace,
            pc: 0,
            domain_uops,
            // Structural queues never outgrow their Table 1 limits, so
            // sizing them up front removes every steady-state
            // reallocation from the per-cycle path (arena-style slabs).
            rob: VecDeque::with_capacity(cfg.cores.rob_entries),
            next_seq: 0,
            completions: BinaryHeap::with_capacity(cfg.cores.issueq_entries),
            inflight_exec: 0,
            loads_in_rob: 0,
            storeq: VecDeque::with_capacity(cfg.cores.storeq_entries),
            stores_retired_seq: 0,
            storeq_lines: FastMap::with_capacity_and_hasher(
                cfg.cores.storeq_entries,
                Default::default(),
            ),
            last_compute_done: 0,
            pending_clwbs: Vec::with_capacity(16),
            fence_active: false,
            llt: Llt::new(cfg.proteus.llt_entries, cfg.proteus.llt_ways),
            logq: LogQ::new(cfg.proteus.logq_entries),
            lrs: LogRegFile::new(cfg.proteus.log_registers),
            logarea: LogArea::new(thread, layout),
            current_tx: None,
            flush_meta: FastMap::with_capacity_and_hasher(
                cfg.proteus.logq_entries,
                Default::default(),
            ),
            persist_ordering_disabled: cfg.proteus.disable_persist_ordering && policy.proteus_hw,
            held_flushes: Vec::new(),
            atom_logged: FastSet::default(),
            atom_acks_outstanding: 0,
            mshr: FastMap::with_capacity_and_hasher(cfg.cores.loadq_entries, Default::default()),
            req_lines: FastMap::with_capacity_and_hasher(
                cfg.cores.loadq_entries,
                Default::default(),
            ),
            incomplete_loads: std::collections::BTreeSet::new(),
            parked_loads: Vec::with_capacity(cfg.cores.loadq_entries),
            next_local_id: 0,
            out: Vec::with_capacity(32),
            wb_scratch: Vec::with_capacity(8),
            lock_acquires: 0,
            stats: CoreStats::new(),
            done_at: None,
            tracer: Tracer::disabled(),
            tx_path: None,
        }
    }

    /// Attaches a tracer (the system installs one per core when tracing
    /// is enabled; the default is the free disabled tracer).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Ring capacity of the attached tracer (0 when tracing is off) —
    /// lets tests assert the disabled path allocates nothing.
    pub fn trace_capacity(&self) -> usize {
        self.tracer.capacity()
    }

    /// Detaches everything the core's tracer captured (`None` when
    /// tracing is off).
    pub fn take_trace(&mut self) -> Option<TrackDump> {
        self.tracer.take_dump()
    }

    /// The core's id.
    pub fn id(&self) -> CoreId {
        self.id
    }

    /// The thread whose trace this core executes.
    pub fn thread(&self) -> ThreadId {
        self.thread
    }

    /// Whether the trace has fully drained through the machine.
    pub fn is_done(&self) -> bool {
        self.done_at.is_some()
    }

    /// Collected statistics (valid once done, but readable any time).
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// Successful `wait-value` ticket-lock acquires (zero for
    /// share-nothing workloads).
    pub fn lock_acquires(&self) -> u64 {
        self.lock_acquires
    }

    /// Drains requests bound for the memory controller.
    pub fn drain_requests(&mut self) -> Vec<(Cycle, McRequest)> {
        std::mem::take(&mut self.out)
    }

    /// Moves requests bound for the memory controller into `sink`,
    /// preserving order. Reuses `sink`'s allocation — the per-cycle hot
    /// path, unlike [`Core::drain_requests`].
    pub fn drain_requests_into(&mut self, sink: &mut Vec<(Cycle, McRequest)>) {
        sink.append(&mut self.out);
    }

    /// Forwards scratch-buffered cache evictions to the memory
    /// controller, in eviction order, and leaves the buffer empty (its
    /// allocation is retained for the next cache call).
    fn flush_writebacks(&mut self, now: Cycle) {
        for (wline, wdata) in self.wb_scratch.drain(..) {
            self.out.push((
                now + MISS_PATH_DELAY,
                McRequest::WriteBack { line: wline, data: wdata, ack_id: None },
            ));
        }
    }

    fn fresh_id(&mut self) -> u64 {
        self.next_local_id += 1;
        encode_id(self.id, self.next_local_id)
    }

    /// Forwards the newest unreleased store value for `addr`'s word among
    /// stores *older* than `before_seq` (program order matters: a reader
    /// must never observe its own or a younger store).
    fn forwarded_word(&self, addr: Addr, before_seq: u64) -> Option<u64> {
        let word = addr.raw() / 8;
        self.storeq
            .iter()
            .rev()
            .find(|s| s.seq < before_seq && s.addr.raw() / 8 == word)
            .map(|s| s.value)
    }

    /// Reads the architectural value of a grain as seen by the micro-op
    /// with sequence `before_seq`: line data overlaid with older
    /// unreleased stores.
    fn grain_with_overlay(
        &self,
        line_data: &LineData,
        grain: LogGrainAddr,
        before_seq: u64,
    ) -> [u64; 4] {
        let base = grain.base();
        std::array::from_fn(|i| {
            let addr = base.offset(i as u64 * 8);
            self.forwarded_word(addr, before_seq)
                .unwrap_or(line_data[(addr.line_offset() / 8) as usize])
        })
    }

    /// The lock word's value as this core would read it right now: the
    /// newest own unreleased store (a re-acquire can race its own release
    /// still sitting in the store queue), else the coherent cached view.
    /// `None` means no copy is cached anywhere — memory is then
    /// authoritative, because a release store never leaves the private
    /// caches without a coherent reader pulling it out.
    fn lock_word_visible<C: CacheAccess>(
        &self,
        addr: Addr,
        before_seq: u64,
        caches: &C,
    ) -> Option<u64> {
        if let Some(v) = self.forwarded_word(addr, before_seq) {
            return Some(v);
        }
        caches.peek(self.id, addr).map(|data| data[(addr.line_offset() / 8) as usize])
    }

    fn issue_fetch(&mut self, line: LineAddr, now: Cycle) {
        if self.mshr.contains_key(&line.index()) {
            return;
        }
        self.mshr.insert(line.index(), MshrEntry::default());
        let req_id = self.fresh_id();
        self.req_lines.insert(req_id, line);
        self.out.push((now + MISS_PATH_DELAY, McRequest::Read { line, req_id }));
    }

    /// Advances the core by one cycle. Consecutive calls may jump `now`
    /// forward past a window in which [`Core::next_event_cycle`] reported
    /// no possible progress; such skipped cycles must be credited through
    /// [`Core::account_skipped_cycles`] to keep statistics exact.
    pub fn tick<C: CacheAccess>(&mut self, now: Cycle, caches: &mut C) {
        if self.done_at.is_some() {
            return;
        }
        if self.tracer.is_enabled() {
            self.tracer.maybe_sample(
                now,
                &[
                    (QueueId::Rob, self.rob.len() as u32),
                    (QueueId::LoadQ, self.loads_in_rob as u32),
                    (QueueId::StoreQ, self.storeq.len() as u32),
                    (QueueId::LogQ, self.logq.len() as u32),
                    (QueueId::LogRegs, self.lrs.in_use() as u32),
                    (QueueId::Llt, self.llt.len() as u32),
                ],
            );
        }
        self.process_completions(now);
        self.issue_parked_loads(now, caches);
        self.send_ready_flushes(now);
        self.retire(now, caches);
        self.release_stores(now, caches);
        self.process_clwbs(now, caches);
        self.dispatch(now, caches);
        self.check_done(now);
    }

    /// Delivers a memory-controller event (the surrounding system applies
    /// the response link latency before calling this).
    pub fn handle_event<C: CacheAccess>(&mut self, event: &McEvent, now: Cycle, caches: &mut C) {
        match event {
            McEvent::ReadDone { req_id, data, .. } => {
                let Some(line) = self.req_lines.remove(req_id) else {
                    return;
                };
                caches.fill(self.id, line, *data, &mut self.wb_scratch);
                self.flush_writebacks(now);
                if let Some(waiters) = self.mshr.remove(&line.index()) {
                    for seq in waiters.load_waiters {
                        self.complete_at(seq, now + self.l1_latency);
                    }
                    for (seq, lr) in waiters.logload_waiters {
                        let grain = self.lrs.grain(lr).expect("LR allocated");
                        let value = self.grain_with_overlay(data, grain, seq);
                        self.lrs.fill(lr, value);
                        self.complete_at(seq, now + self.l1_latency);
                    }
                }
            }
            McEvent::WritebackAck { ack_id, .. } => {
                self.pending_clwbs.retain(|c| c.ack_id != Some(*ack_id));
            }
            McEvent::LogFlushAck { flush_id, .. } => {
                let local = decode_local(*flush_id);
                self.logq.ack(local);
                self.flush_meta.remove(&local);
                self.tracer.emit(
                    now,
                    TraceEventKind::Dequeue {
                        queue: QueueId::LogQ,
                        occupancy: self.logq.len() as u32,
                    },
                );
            }
            McEvent::AtomLogAck { .. } => {
                self.atom_acks_outstanding = self.atom_acks_outstanding.saturating_sub(1);
                if let Some(head) = self.rob.front_mut() {
                    if let UopState::Atom(p @ AtomProgress::WaitAck) = &mut head.state {
                        *p = AtomProgress::Done;
                    }
                }
            }
            McEvent::TxEndDone { tx, .. } => {
                if let Some(head) = self.rob.front_mut() {
                    if let (Uop::TxEnd { tx: head_tx }, UopState::Fence(p)) =
                        (&head.uop, &mut head.state)
                    {
                        if head_tx == tx && *p == FenceProgress::Sent {
                            *p = FenceProgress::Done;
                        }
                    }
                }
            }
            McEvent::PcommitDone { .. } => {
                if let Some(head) = self.rob.front_mut() {
                    if let (Uop::Pcommit, UopState::Fence(p)) = (&head.uop, &mut head.state) {
                        if *p == FenceProgress::Sent {
                            *p = FenceProgress::Done;
                        }
                    }
                }
            }
        }
    }

    fn complete_at(&mut self, seq: u64, cycle: Cycle) {
        self.completions.push(Reverse((cycle, seq)));
    }

    fn rob_index(&self, seq: u64) -> Option<usize> {
        let front = self.rob.front()?.seq;
        let idx = seq.checked_sub(front)? as usize;
        (idx < self.rob.len()).then_some(idx)
    }

    fn process_completions(&mut self, now: Cycle) {
        while let Some(Reverse((cycle, seq))) = self.completions.peek().copied() {
            if cycle > now {
                break;
            }
            self.completions.pop();
            if let Some(idx) = self.rob_index(seq) {
                if !self.rob[idx].completed {
                    self.rob[idx].completed = true;
                    self.inflight_exec = self.inflight_exec.saturating_sub(1);
                    if matches!(
                        self.rob[idx].uop,
                        Uop::Load { .. } | Uop::LogLoad { .. } | Uop::WaitValue { .. }
                    ) {
                        self.incomplete_loads.remove(&seq);
                    }
                }
            }
        }
    }

    /// Issues parked dependent loads whose older loads have all completed
    /// (the pointer-chasing serialisation).
    fn issue_parked_loads<C: CacheAccess>(&mut self, now: Cycle, caches: &mut C) {
        if self.parked_loads.is_empty() {
            return;
        }
        let mut still_parked = Vec::new();
        for seq in std::mem::take(&mut self.parked_loads) {
            if self.incomplete_loads.range(..seq).next().is_some() {
                still_parked.push(seq);
                continue;
            }
            let Some(idx) = self.rob_index(seq) else { continue };
            match self.rob[idx].uop {
                Uop::Load { addr, .. } => {
                    if self.forwarded_word(addr, seq).is_some() {
                        self.rob[idx].state = UopState::None;
                        self.complete_at(seq, now + self.l1_latency);
                    } else {
                        match caches.load(self.id, addr, &mut self.wb_scratch) {
                            LookupResult::Hit { latency, .. } => {
                                self.rob[idx].state = UopState::None;
                                self.complete_at(seq, now + latency);
                            }
                            LookupResult::Miss => {
                                self.rob[idx].state = UopState::WaitMem;
                                self.issue_fetch(addr.line(), now);
                                self.mshr
                                    .get_mut(&addr.line().index())
                                    .expect("fetch registered")
                                    .load_waiters
                                    .push(seq);
                            }
                        }
                    }
                }
                Uop::LogLoad { lr, addr } => {
                    let lr = lr.0 as usize;
                    let grain = addr.log_grain();
                    match caches.load(self.id, addr, &mut self.wb_scratch) {
                        LookupResult::Hit { latency, data } => {
                            let value = self.grain_with_overlay(&data, grain, seq);
                            self.lrs.fill(lr, value);
                            self.rob[idx].state = UopState::LogLoad;
                            self.complete_at(seq, now + latency);
                        }
                        LookupResult::Miss => {
                            self.rob[idx].state = UopState::WaitMem;
                            self.issue_fetch(addr.line(), now);
                            self.mshr
                                .get_mut(&addr.line().index())
                                .expect("fetch registered")
                                .logload_waiters
                                .push((seq, lr));
                        }
                    }
                }
                _ => unreachable!("only loads park"),
            }
            self.flush_writebacks(now);
        }
        self.parked_loads = still_parked;
    }

    /// Sends log flushes whose log-load data has arrived. Flushes issue
    /// concurrently — the paper's key advantage over ATOM.
    fn send_ready_flushes(&mut self, now: Cycle) {
        if self.logq.is_empty() && self.held_flushes.is_empty() {
            return;
        }
        let ready: Vec<(u64, Addr)> = self
            .logq
            .unsent()
            .filter_map(|e| {
                let (lr, _, _) = self.flush_meta.get(&e.id)?;
                self.lrs.data(*lr).map(|_| (e.id, e.slot))
            })
            .collect();
        for (id, slot) in ready {
            let (lr, entry_seq, tx) = self.flush_meta[&id];
            let grain = self.lrs.grain(lr).expect("LR allocated");
            let data = self.lrs.data(lr).expect("checked above");
            // The flush has consumed the register value; the LR is "no
            // longer needed for detecting register dependences" (§4.2)
            // and recycles immediately — this is what makes 8 LRs enough.
            self.lrs.free(lr);
            let entry = LogEntry::new(data, grain.base(), tx, entry_seq);
            let words = entry.encode_words();
            if self.persist_ordering_disabled {
                // Broken-ordering knob: buffer the ready entry locally
                // ("defer the log to commit") instead of sending it. The
                // LogQ entry is marked sent but stays unacknowledged, so
                // the commit fence still waits for the eventual ack.
                self.flush_meta.remove(&id);
                self.logq.mark_sent(id);
                self.held_flushes.push(HeldFlush { id, slot, words, tx });
            } else {
                self.out.push((
                    now + UNCACHED_DELAY,
                    McRequest::LogFlush {
                        slot,
                        words,
                        core: self.id,
                        tx,
                        flush_id: encode_id(self.id, id),
                    },
                ));
                self.logq.mark_sent(id);
            }
            // The flush micro-op has executed; it may now retire. The
            // LogQ entry lives on until the ack.
            if let Some(idx) = self.rob.iter().position(
                |e| matches!(&e.state, UopState::LogFlush { logq_id: Some(q), .. } if *q == id),
            ) {
                let seq = self.rob[idx].seq;
                if !self.rob[idx].completed {
                    self.complete_at(seq, now + 1);
                }
            }
        }
        self.release_held_flushes(now);
    }

    /// With `disable_persist_ordering` set, buffered log flushes go out
    /// only once the transaction's commit fence is at the ROB head and
    /// every data write-back has been acknowledged durable — i.e. strictly
    /// *after* the stores they were supposed to precede, the classic
    /// write-ahead-logging violation. A full LogQ spills the oldest
    /// buffered flush early so oversized transactions still drain.
    fn release_held_flushes(&mut self, now: Cycle) {
        if self.held_flushes.is_empty() {
            return;
        }
        let fence_at_head = matches!(
            self.rob.front().map(|e| e.uop),
            Some(Uop::TxEnd { .. } | Uop::Sfence | Uop::Pcommit | Uop::LogSave)
        );
        let data_durable = self.pending_clwbs.is_empty() && self.storeq.iter().all(|s| !s.retired);
        if fence_at_head && data_durable {
            for h in std::mem::take(&mut self.held_flushes) {
                self.send_held_flush(h, now);
            }
        } else if !self.logq.has_space() {
            let h = self.held_flushes.remove(0);
            self.send_held_flush(h, now);
        }
    }

    fn send_held_flush(&mut self, h: HeldFlush, now: Cycle) {
        self.out.push((
            now + UNCACHED_DELAY,
            McRequest::LogFlush {
                slot: h.slot,
                words: h.words,
                core: self.id,
                tx: h.tx,
                flush_id: encode_id(self.id, h.id),
            },
        ));
    }

    fn persist_drained(&self) -> bool {
        // Every retired store released, every clwb acked, every log flush
        // acked, every ATOM log entry acked.
        self.storeq.iter().all(|s| !s.retired)
            && self.pending_clwbs.is_empty()
            && self.logq.is_empty()
            && self.atom_acks_outstanding == 0
    }

    /// Attributes one blocked `tx-end` cycle to the first undrained
    /// persist category, mirroring [`Core::persist_drained`]'s clauses in
    /// the order the pipeline drains them. Trace-only.
    fn trace_commit_wait(&mut self) {
        let Some(path) = self.tx_path.as_mut() else { return };
        let w = &mut path.wait;
        if self.storeq.iter().any(|s| s.retired) {
            w.store_release += 1;
        } else if !self.pending_clwbs.is_empty() {
            w.clwb += 1;
        } else if !self.logq.is_empty() {
            w.logq += 1;
        } else if self.atom_acks_outstanding > 0 {
            w.atom += 1;
        } else {
            w.mc_commit += 1;
        }
    }

    /// Finalises the transaction's critical-path record at the durable
    /// point. Trace-only (`tx_path` is `None` unless a tracer is
    /// attached).
    fn trace_tx_durable(&mut self, tx: TxId, now: Cycle) {
        self.tracer.emit(now, TraceEventKind::Dequeue { queue: QueueId::Llt, occupancy: 0 });
        let Some(path) = self.tx_path.take() else { return };
        debug_assert_eq!(path.tx, tx, "tx path must belong to the committing transaction");
        self.tracer.emit(now, TraceEventKind::TxDurable { tx: tx.raw() });
        let begin = path.begin;
        let last_store = path.last_store.unwrap_or(begin);
        let commit_request = path.commit_request.unwrap_or(now);
        self.tracer.record_tx(TxRecord {
            tx: path.tx.raw(),
            core: self.id.raw(),
            begin,
            last_store,
            commit_request,
            durable: now,
            wait: path.wait,
        });
    }

    fn retire<C: CacheAccess>(&mut self, now: Cycle, caches: &mut C) {
        for _ in 0..self.width {
            let Some(head) = self.rob.front() else { break };
            if !head.completed {
                break;
            }
            let seq = head.seq;
            let uop = head.uop;
            // Per-kind retirement gating.
            match uop {
                Uop::Store { addr, .. } => {
                    if self.policy.atom_retirement
                        && self.current_tx.is_some()
                        && !self.atom_retire_ready(addr, now, caches)
                    {
                        break;
                    }
                    if let Some(s) = self.storeq.iter_mut().find(|s| s.seq == seq) {
                        s.retired = true;
                    }
                    self.stores_retired_seq = seq;
                    self.stats.stores += 1;
                    if let Some(path) = self.tx_path.as_mut() {
                        path.last_store = Some(now);
                    }
                    if self.tracer.is_enabled() && proteus_types::sharing::is_struct_lock(addr) {
                        self.tracer.emit(now, TraceEventKind::LockRelease { addr: addr.raw() });
                    }
                }
                Uop::Clwb { addr } => {
                    self.pending_clwbs.push(PendingClwb { addr, performed: false, ack_id: None });
                    self.stats.clwbs += 1;
                }
                Uop::Sfence => {
                    if !self.persist_drained() {
                        break;
                    }
                    self.fence_active = false;
                    self.stats.fences += 1;
                }
                Uop::Pcommit => {
                    if !self.persist_drained() {
                        break;
                    }
                    let head = self.rob.front_mut().expect("head exists");
                    match &mut head.state {
                        UopState::Fence(p @ FenceProgress::Waiting) => {
                            *p = FenceProgress::Sent;
                            let commit_id = self.fresh_id();
                            self.out.push((now + UNCACHED_DELAY, McRequest::Pcommit { commit_id }));
                            break;
                        }
                        UopState::Fence(FenceProgress::Sent) => break,
                        UopState::Fence(FenceProgress::Done) => {
                            self.fence_active = false;
                            self.stats.fences += 1;
                        }
                        _ => unreachable!("pcommit carries fence state"),
                    }
                }
                Uop::TxEnd { tx } => {
                    if !self.persist_drained() {
                        self.trace_commit_wait();
                        break;
                    }
                    let head = self.rob.front_mut().expect("head exists");
                    match &mut head.state {
                        UopState::Fence(p @ FenceProgress::Waiting) => {
                            *p = FenceProgress::Sent;
                            self.out.push((
                                now + UNCACHED_DELAY,
                                McRequest::TxEnd { core: self.id, tx },
                            ));
                            if let Some(path) = self.tx_path.as_mut() {
                                path.commit_request = Some(now);
                                self.tracer
                                    .emit(now, TraceEventKind::TxCommitRequest { tx: tx.raw() });
                            }
                            break;
                        }
                        UopState::Fence(FenceProgress::Sent) => {
                            if let Some(path) = self.tx_path.as_mut() {
                                path.wait.mc_commit += 1;
                            }
                            break;
                        }
                        UopState::Fence(FenceProgress::Done) => {
                            self.llt.clear();
                            self.atom_logged.clear();
                            self.current_tx = None;
                            self.fence_active = false;
                            self.stats.transactions += 1;
                            self.trace_tx_durable(tx, now);
                        }
                        _ => unreachable!("tx-end carries fence state"),
                    }
                }
                Uop::TxBegin { .. } => {}
                Uop::Load { .. } => {
                    self.loads_in_rob -= 1;
                    self.stats.loads += 1;
                }
                Uop::LogLoad { .. } => {
                    // Elided pairs (state None) never occupied the load
                    // queue.
                    let head = self.rob.front().expect("head exists");
                    if matches!(head.state, UopState::LogLoad | UopState::WaitMem) {
                        self.loads_in_rob -= 1;
                    }
                    self.stats.log_loads += 1;
                }
                Uop::LogFlush { .. } => {
                    let head = self.rob.front().expect("head exists");
                    if let UopState::LogFlush { elided, .. } = head.state {
                        self.stats.log_flushes += 1;
                        if elided {
                            self.stats.log_flushes_elided += 1;
                        }
                    }
                }
                Uop::LogSave => {
                    if !self.persist_drained() {
                        break;
                    }
                    self.out
                        .push((now + UNCACHED_DELAY, McRequest::DrainCoreLogs { core: self.id }));
                    self.llt.clear();
                    self.fence_active = false;
                }
                Uop::Compute { .. } => {}
                Uop::WaitValue { .. } => {
                    self.loads_in_rob -= 1;
                    self.stats.loads += 1;
                }
            }
            self.rob.pop_front();
            self.stats.uops_retired += 1;
        }
    }

    /// ATOM: a transactional store at the ROB head may retire only once
    /// its grain's log entry is durable at the memory controller.
    fn atom_retire_ready<C: CacheAccess>(
        &mut self,
        addr: Addr,
        now: Cycle,
        caches: &mut C,
    ) -> bool {
        let grain = addr.log_grain();
        if self.atom_logged.contains(&grain.index()) {
            return true;
        }
        let head = self.rob.front_mut().expect("caller checked");
        let progress = match &mut head.state {
            UopState::Atom(p) => p,
            s @ UopState::None => {
                *s = UopState::Atom(AtomProgress::NeedLine);
                match s {
                    UopState::Atom(p) => p,
                    _ => unreachable!(),
                }
            }
            _ => unreachable!("store carries Atom or None state"),
        };
        match *progress {
            AtomProgress::NeedLine => {
                let head_seq = self.rob.front().expect("caller checked").seq;
                // Any older unreleased store to this grain must be folded
                // into the pre-store value (it is architecturally older).
                let grain_base = grain.base();
                let overlay_needed = (0..4)
                    .any(|i| self.forwarded_word(grain_base.offset(i * 8), head_seq).is_some());
                let old_data = match caches.peek(self.id, addr) {
                    Some(data) => Some(self.grain_with_overlay(&data, grain, head_seq)),
                    None if overlay_needed => {
                        // Rare: the MC cannot see the in-flight stores, so
                        // fetch the line and retry next cycle.
                        self.issue_fetch(addr.line(), now);
                        return false;
                    }
                    // Source-log optimisation: the MC reads the grain from
                    // its own WPQ/NVMM view — no core-side fetch.
                    None => None,
                };
                let log_id = self.fresh_id();
                let tx = self.current_tx.expect("in transaction");
                self.out.push((
                    now + UNCACHED_DELAY,
                    McRequest::AtomLog { grain: grain_base, old_data, core: self.id, tx, log_id },
                ));
                self.atom_acks_outstanding += 1;
                self.atom_logged.insert(grain.index());
                if let Some(h) = self.rob.front_mut() {
                    h.state = UopState::Atom(AtomProgress::WaitAck);
                }
                self.stats.atom_log_entries += 1;
                false
            }
            AtomProgress::WaitAck => false,
            AtomProgress::Done => {
                if let Some(h) = self.rob.front_mut() {
                    h.state = UopState::None;
                }
                true
            }
        }
    }

    /// Releases retired stores from the store queue to the cache, in
    /// order, one per cycle, subject to the write-ahead constraint. The
    /// write-allocate fetch was prefetched at dispatch; the peek below is
    /// a fallback for lines evicted in between.
    fn release_stores<C: CacheAccess>(&mut self, now: Cycle, caches: &mut C) {
        let Some(head) = self.storeq.front().copied() else { return };
        if !head.retired {
            return;
        }
        // Write-ahead ordering: an unacknowledged log flush for this grain
        // blocks the release (Proteus §4.2). ATOM blocks at retirement
        // instead; software schemes order via sfence. The fault knob
        // removes exactly this gate.
        if self.policy.proteus_hw
            && !self.persist_ordering_disabled
            && self.logq.blocks_store_to(head.addr.log_grain())
        {
            return;
        }
        // Write-allocate: only attempt the store once the line is
        // resident (the prefetch above fetched it); peeking avoids
        // polluting LRU/statistics with per-cycle retries.
        if caches.peek(self.id, head.addr).is_none() {
            self.issue_fetch(head.addr.line(), now);
            return;
        }
        match caches.store(self.id, head.addr, head.value, &mut self.wb_scratch) {
            LookupResult::Hit { .. } => {
                self.storeq.pop_front();
                self.tracer.emit(
                    now,
                    TraceEventKind::Dequeue {
                        queue: QueueId::StoreQ,
                        occupancy: self.storeq.len() as u32,
                    },
                );
                let line = head.addr.line().index();
                if let Some(count) = self.storeq_lines.get_mut(&line) {
                    *count -= 1;
                    if *count == 0 {
                        self.storeq_lines.remove(&line);
                    }
                }
            }
            LookupResult::Miss => unreachable!("peek said the line is resident"),
        }
        self.flush_writebacks(now);
    }

    /// Performs retired clwbs whose same-line older stores have released.
    fn process_clwbs<C: CacheAccess>(&mut self, now: Cycle, caches: &mut C) {
        let mut to_remove = Vec::new();
        for i in 0..self.pending_clwbs.len() {
            if self.pending_clwbs[i].performed {
                continue;
            }
            let addr = self.pending_clwbs[i].addr;
            let line = addr.line();
            // Conservative O(1) check: any unreleased store to the same
            // line blocks the flush (the precise rule is "older stores
            // only"; unreleased younger same-line stores are rare and the
            // extra delay is harmless — release is in order anyway).
            if self.storeq_lines.contains_key(&line.index()) {
                continue;
            }
            match caches.clwb(self.id, addr) {
                Some(data) => {
                    let ack_id = self.fresh_id();
                    self.pending_clwbs[i].performed = true;
                    self.pending_clwbs[i].ack_id = Some(ack_id);
                    self.out.push((
                        now + MISS_PATH_DELAY,
                        McRequest::WriteBack { line, data, ack_id: Some(ack_id) },
                    ));
                }
                None => to_remove.push(i),
            }
        }
        for i in to_remove.into_iter().rev() {
            self.pending_clwbs.remove(i);
        }
    }

    fn dispatch<C: CacheAccess>(&mut self, now: Cycle, caches: &mut C) {
        let mut dispatched = 0;
        let mut stall: Option<StallCause> = None;
        while dispatched < self.width && self.pc < self.trace.uops.len() {
            let uop = self.trace.uops[self.pc];
            if self.rob.len() >= self.rob_entries {
                stall = Some(self.rob_full_cause());
                break;
            }
            // Fence blocks younger stores and PMEM/logging operations.
            if self.fence_active
                && matches!(
                    uop,
                    Uop::Store { .. }
                        | Uop::Clwb { .. }
                        | Uop::Sfence
                        | Uop::Pcommit
                        | Uop::LogLoad { .. }
                        | Uop::LogFlush { .. }
                        | Uop::TxBegin { .. }
                        | Uop::TxEnd { .. }
                        | Uop::LogSave
                )
            {
                stall = Some(StallCause::FenceDrain);
                break;
            }
            match self.try_dispatch_one(uop, now, caches) {
                Ok(()) => dispatched += 1,
                Err(cause) => {
                    stall = Some(cause);
                    break;
                }
            }
        }
        if dispatched == 0 && self.pc < self.trace.uops.len() {
            let cause = stall.unwrap_or(StallCause::IssueQFull);
            self.stats.record_stall(cause);
            self.tracer.emit(now, TraceEventKind::Stall(cause));
        }
    }

    /// Attributes a ROB-full stall to ATOM's log wait when that is what is
    /// actually clogging the head.
    fn rob_full_cause(&self) -> StallCause {
        match self.rob.front().map(|e| &e.state) {
            Some(UopState::Atom(_)) => StallCause::AtomLogWait,
            _ => StallCause::RobFull,
        }
    }

    fn try_dispatch_one<C: CacheAccess>(
        &mut self,
        uop: Uop,
        now: Cycle,
        caches: &mut C,
    ) -> Result<(), StallCause> {
        let seq = self.next_seq;
        let mut state = UopState::None;
        let mut completed = false;
        let mut complete_at: Option<Cycle> = None;
        match uop {
            Uop::Compute { latency } => {
                if self.inflight_exec >= self.issueq_entries {
                    return Err(StallCause::IssueQFull);
                }
                // Scalar application code is a serial dependency chain:
                // consecutive computes execute back to back, not in
                // parallel.
                let done = self.last_compute_done.max(now) + latency.max(1) as Cycle;
                self.last_compute_done = done;
                complete_at = Some(done);
            }
            Uop::Load { addr, dependent } => {
                if self.inflight_exec >= self.issueq_entries {
                    return Err(StallCause::IssueQFull);
                }
                if self.loads_in_rob >= self.loadq_entries {
                    return Err(StallCause::LoadQFull);
                }
                self.loads_in_rob += 1;
                self.incomplete_loads.insert(seq);
                if dependent && self.incomplete_loads.range(..seq).next().is_some() {
                    // Pointer chase: park until older loads complete.
                    state = UopState::WaitDeps;
                    self.parked_loads.push(seq);
                } else if self.forwarded_word(addr, seq).is_some() {
                    complete_at = Some(now + self.l1_latency);
                } else {
                    match caches.load(self.id, addr, &mut self.wb_scratch) {
                        LookupResult::Hit { latency, .. } => {
                            complete_at = Some(now + latency);
                        }
                        LookupResult::Miss => {
                            state = UopState::WaitMem;
                            self.issue_fetch(addr.line(), now);
                            self.mshr
                                .get_mut(&addr.line().index())
                                .expect("just inserted")
                                .load_waiters
                                .push(seq);
                        }
                    }
                    self.flush_writebacks(now);
                }
            }
            Uop::Store { addr, value } => {
                if self.storeq.len() >= self.storeq_entries {
                    return Err(StallCause::StoreQFull);
                }
                self.storeq.push_back(StoreEntry { seq, addr, value, retired: false });
                self.tracer.emit(
                    now,
                    TraceEventKind::Enqueue {
                        queue: QueueId::StoreQ,
                        occupancy: self.storeq.len() as u32,
                    },
                );
                *self.storeq_lines.entry(addr.line().index()).or_insert(0) += 1;
                // RFO prefetch at execute: the write-allocate fetch
                // overlaps with everything between dispatch and release.
                if !self.mshr.contains_key(&addr.line().index())
                    && caches.peek(self.id, addr).is_none()
                {
                    self.issue_fetch(addr.line(), now);
                }
                complete_at = Some(now + 1);
            }
            Uop::Clwb { .. } => {
                if self.inflight_exec >= self.issueq_entries {
                    return Err(StallCause::IssueQFull);
                }
                complete_at = Some(now + 1);
            }
            Uop::Sfence => {
                self.fence_active = true;
                completed = true;
            }
            Uop::Pcommit | Uop::TxEnd { .. } => {
                self.fence_active = true;
                completed = true;
                state = UopState::Fence(FenceProgress::Waiting);
                if matches!(uop, Uop::TxEnd { .. }) && self.policy.proteus_hw {
                    self.logarea.end_tx().expect("balanced transactions");
                }
            }
            Uop::TxBegin { tx } => {
                completed = true;
                self.current_tx = Some(tx);
                if self.policy.proteus_hw {
                    self.logarea.begin_tx(tx).expect("balanced transactions");
                }
                if self.tracer.is_enabled() {
                    self.tracer.emit(now, TraceEventKind::TxBegin { tx: tx.raw() });
                    self.tx_path = Some(TxPath {
                        tx,
                        begin: now,
                        last_store: None,
                        commit_request: None,
                        wait: CommitWait::default(),
                    });
                }
            }
            Uop::LogLoad { lr, addr } => {
                if self.inflight_exec >= self.issueq_entries {
                    return Err(StallCause::IssueQFull);
                }
                let lr = lr.0 as usize;
                let grain = addr.log_grain();
                // The LLT is consulted as soon as the log-from address is
                // known: on a hit the whole pair completes immediately
                // and no data is loaded (§4.2).
                self.stats.llt_lookups += 1;
                let elided = self.llt.lookup_insert(grain);
                if elided {
                    self.stats.llt_hits += 1;
                    if !self.lrs.try_allocate(lr, grain, true) {
                        self.llt.undo_insert(grain);
                        self.stats.llt_lookups -= 1;
                        self.stats.llt_hits -= 1;
                        self.tracer.emit(now, TraceEventKind::Reject { queue: QueueId::LogRegs });
                        return Err(StallCause::LrFull);
                    }
                    complete_at = Some(now + 1);
                } else {
                    if self.loads_in_rob >= self.loadq_entries {
                        self.llt.undo_insert(grain);
                        self.stats.llt_lookups -= 1;
                        return Err(StallCause::LoadQFull);
                    }
                    if !self.lrs.try_allocate(lr, grain, false) {
                        self.llt.undo_insert(grain);
                        self.stats.llt_lookups -= 1;
                        self.tracer.emit(now, TraceEventKind::Reject { queue: QueueId::LogRegs });
                        return Err(StallCause::LrFull);
                    }
                    self.loads_in_rob += 1;
                    self.incomplete_loads.insert(seq);
                    self.tracer.emit(
                        now,
                        TraceEventKind::Enqueue {
                            queue: QueueId::Llt,
                            occupancy: self.llt.len() as u32,
                        },
                    );
                    // A log-load's data (and the value of the store it
                    // guards) derives from earlier loads, so it issues
                    // once older loads complete — by which time the grain
                    // is normally cached and the LR recycles quickly.
                    if self.incomplete_loads.range(..seq).next().is_some() {
                        state = UopState::WaitDeps;
                        self.parked_loads.push(seq);
                    } else {
                        state = UopState::LogLoad;
                        match caches.load(self.id, addr, &mut self.wb_scratch) {
                            LookupResult::Hit { latency, data } => {
                                let value = self.grain_with_overlay(&data, grain, seq);
                                self.lrs.fill(lr, value);
                                complete_at = Some(now + latency);
                            }
                            LookupResult::Miss => {
                                self.issue_fetch(addr.line(), now);
                                self.mshr
                                    .get_mut(&addr.line().index())
                                    .expect("just inserted")
                                    .logload_waiters
                                    .push((seq, lr));
                            }
                        }
                        self.flush_writebacks(now);
                    }
                }
            }
            Uop::LogFlush { lr } => {
                if self.inflight_exec >= self.issueq_entries {
                    return Err(StallCause::IssueQFull);
                }
                let lr = lr.0 as usize;
                let grain =
                    self.lrs.grain(lr).expect("log-flush follows its log-load in program order");
                if self.lrs.is_elided(lr) {
                    // LLT hit recorded at the log-load: complete
                    // immediately, no log-to address (§4.2). The LR
                    // recycles now.
                    self.lrs.free(lr);
                    state = UopState::LogFlush { logq_id: None, elided: true };
                    complete_at = Some(now + 1);
                } else {
                    if !self.logq.has_space() {
                        self.tracer.emit(now, TraceEventKind::Reject { queue: QueueId::LogQ });
                        return Err(StallCause::LogQFull);
                    }
                    let tx = self.current_tx.expect("logging inside a transaction");
                    let (slot, entry_seq) =
                        self.logarea.alloc().expect("log area sized for workload");
                    let id = self.logq.alloc(grain, slot);
                    self.flush_meta.insert(id, (lr, entry_seq, tx));
                    self.tracer.emit(
                        now,
                        TraceEventKind::Enqueue {
                            queue: QueueId::LogQ,
                            occupancy: self.logq.len() as u32,
                        },
                    );
                    state = UopState::LogFlush { logq_id: Some(id), elided: false };
                    // Completion is scheduled by `send_ready_flushes` once
                    // the log-load data lands in the LR.
                }
            }
            Uop::LogSave => {
                // Context switch support (§4.4): behaves like a fence —
                // outstanding persists drain first, then the LPQ flush
                // message goes out and the LLT clears (at retirement).
                self.fence_active = true;
                completed = true;
            }
            Uop::WaitValue { addr, expected } => {
                if self.inflight_exec >= self.issueq_entries {
                    return Err(StallCause::IssueQFull);
                }
                if self.loads_in_rob >= self.loadq_entries {
                    return Err(StallCause::LoadQFull);
                }
                match self.lock_word_visible(addr, seq, caches) {
                    Some(v) if v == expected => {
                        // Ticket matched: the acquire dispatches as a
                        // guaranteed-hit load of the lock word (the probe
                        // saw the line, so the coherent load cannot miss).
                        self.loads_in_rob += 1;
                        self.incomplete_loads.insert(seq);
                        self.lock_acquires += 1;
                        self.tracer.emit(now, TraceEventKind::LockAcquire { addr: addr.raw() });
                        if self.forwarded_word(addr, seq).is_some() {
                            complete_at = Some(now + self.l1_latency);
                        } else {
                            match caches.load(self.id, addr, &mut self.wb_scratch) {
                                LookupResult::Hit { latency, .. } => {
                                    complete_at = Some(now + latency);
                                }
                                LookupResult::Miss => {
                                    unreachable!("probe saw the lock line resident")
                                }
                            }
                            self.flush_writebacks(now);
                        }
                    }
                    Some(_) => return Err(StallCause::LockWait),
                    None => {
                        // Nowhere cached: pull the lock line in (memory is
                        // authoritative — see `lock_word_visible`) and
                        // retry once it lands. MSHR dedup makes the retry
                        // polling free.
                        self.issue_fetch(addr.line(), now);
                        return Err(StallCause::LockWait);
                    }
                }
            }
        }
        if let Some(c) = complete_at {
            self.inflight_exec += 1;
            self.complete_at(seq, c);
        } else if matches!(state, UopState::WaitMem | UopState::WaitDeps | UopState::LogLoad)
            || matches!(state, UopState::LogFlush { logq_id: Some(_), .. })
        {
            self.inflight_exec += 1;
        }
        self.rob.push_back(RobEntry { seq, uop, completed, state });
        self.next_seq += 1;
        self.pc += 1;
        Ok(())
    }

    fn check_done(&mut self, now: Cycle) {
        if self.done_at.is_none()
            && self.pc >= self.trace.uops.len()
            && self.rob.is_empty()
            && self.storeq.is_empty()
            && self.pending_clwbs.is_empty()
            && self.logq.is_empty()
            && self.atom_acks_outstanding == 0
        {
            self.done_at = Some(now);
            self.stats.cycles = now;
        }
    }

    /// Why dispatch of the next trace uop would stall this cycle, or
    /// `None` if it would succeed. A read-only mirror of
    /// [`Core::dispatch`] / `try_dispatch_one`'s gating checks, applied
    /// in exactly the order the dispatch path applies them — used both to
    /// predict wakeups and to attribute stall cycles across skipped
    /// windows.
    fn dispatch_stall_cause<C: CacheAccess>(&self, caches: &C) -> Option<StallCause> {
        debug_assert!(self.pc < self.trace.uops.len(), "caller checks for remaining uops");
        let uop = self.trace.uops[self.pc];
        if self.rob.len() >= self.rob_entries {
            return Some(self.rob_full_cause());
        }
        if self.fence_active
            && matches!(
                uop,
                Uop::Store { .. }
                    | Uop::Clwb { .. }
                    | Uop::Sfence
                    | Uop::Pcommit
                    | Uop::LogLoad { .. }
                    | Uop::LogFlush { .. }
                    | Uop::TxBegin { .. }
                    | Uop::TxEnd { .. }
                    | Uop::LogSave
            )
        {
            return Some(StallCause::FenceDrain);
        }
        match uop {
            Uop::Compute { .. } | Uop::Clwb { .. } => {
                (self.inflight_exec >= self.issueq_entries).then_some(StallCause::IssueQFull)
            }
            Uop::Load { .. } => {
                if self.inflight_exec >= self.issueq_entries {
                    Some(StallCause::IssueQFull)
                } else if self.loads_in_rob >= self.loadq_entries {
                    Some(StallCause::LoadQFull)
                } else {
                    None
                }
            }
            Uop::Store { .. } => {
                (self.storeq.len() >= self.storeq_entries).then_some(StallCause::StoreQFull)
            }
            Uop::Sfence | Uop::Pcommit | Uop::TxBegin { .. } | Uop::TxEnd { .. } | Uop::LogSave => {
                None
            }
            Uop::LogLoad { lr, addr } => {
                if self.inflight_exec >= self.issueq_entries {
                    return Some(StallCause::IssueQFull);
                }
                let lr_busy = self.lrs.grain(lr.0 as usize).is_some();
                if self.llt.would_hit(addr.log_grain()) {
                    lr_busy.then_some(StallCause::LrFull)
                } else if self.loads_in_rob >= self.loadq_entries {
                    Some(StallCause::LoadQFull)
                } else if lr_busy {
                    Some(StallCause::LrFull)
                } else {
                    None
                }
            }
            Uop::LogFlush { lr } => {
                if self.inflight_exec >= self.issueq_entries {
                    Some(StallCause::IssueQFull)
                } else if self.lrs.is_elided(lr.0 as usize) {
                    None
                } else if !self.logq.has_space() {
                    Some(StallCause::LogQFull)
                } else {
                    None
                }
            }
            Uop::WaitValue { addr, expected } => {
                if self.inflight_exec >= self.issueq_entries {
                    Some(StallCause::IssueQFull)
                } else if self.loads_in_rob >= self.loadq_entries {
                    Some(StallCause::LoadQFull)
                } else {
                    match self.lock_word_visible(addr, self.next_seq, caches) {
                        Some(v) if v == expected => None,
                        _ => Some(StallCause::LockWait),
                    }
                }
            }
        }
    }

    /// Whether the completed uop at the ROB head cannot retire this cycle
    /// for a reason no core-local ticking will fix — i.e. retirement is
    /// waiting on an external event (a memory response, a controller
    /// ack). Mirrors [`Core::retire`]'s gating exactly; anything this
    /// cannot cheaply rule out counts as unblocked (a wasted step is
    /// safe, a missed wake is not).
    fn head_blocked<C: CacheAccess>(&self, head: &RobEntry, caches: &C) -> bool {
        match (&head.uop, &head.state) {
            // A sent fence waits for the controller's completion event.
            (_, UopState::Fence(FenceProgress::Sent)) => true,
            (Uop::Pcommit | Uop::TxEnd { .. }, UopState::Fence(FenceProgress::Waiting)) => {
                !self.persist_drained()
            }
            (Uop::Sfence | Uop::LogSave, _) => !self.persist_drained(),
            (Uop::Store { addr, .. }, state)
                if self.policy.atom_retirement && self.current_tx.is_some() =>
            {
                let grain = addr.log_grain();
                if self.atom_logged.contains(&grain.index()) {
                    return false; // retires via the already-logged fast path
                }
                match state {
                    UopState::Atom(AtomProgress::WaitAck) => true,
                    UopState::Atom(AtomProgress::NeedLine) | UopState::None => {
                        // The retry makes progress unless it is waiting
                        // for an in-flight overlay fetch: a resident line
                        // (or no overlay requirement) sends the log
                        // entry, and an absent MSHR entry means the retry
                        // issues the fetch itself.
                        let grain_base = grain.base();
                        let overlay_needed = (0..4).any(|i| {
                            self.forwarded_word(grain_base.offset(i * 8), head.seq).is_some()
                        });
                        overlay_needed
                            && caches.peek(self.id, *addr).is_none()
                            && self.mshr.contains_key(&addr.line().index())
                    }
                    _ => false,
                }
            }
            _ => false,
        }
    }

    /// Earliest cycle at or after `now` at which ticking this core could
    /// change simulated state, or `None` if the core is finished or
    /// waiting purely on external input. Follows the
    /// [`proteus_types::NextEvent`] contract; it is an inherent method
    /// because store-release and ATOM-logging progress depend on cache
    /// residency, so the hierarchy must be consulted.
    pub fn next_event_cycle<C: CacheAccess>(&self, now: Cycle, caches: &C) -> Option<Cycle> {
        if self.done_at.is_some() {
            return None;
        }
        // Outgoing requests must reach the system's routing loop.
        if !self.out.is_empty() {
            return Some(now);
        }
        // `check_done` fires on the tick *after* the final drain.
        if self.pc >= self.trace.uops.len()
            && self.rob.is_empty()
            && self.storeq.is_empty()
            && self.pending_clwbs.is_empty()
            && self.logq.is_empty()
            && self.atom_acks_outstanding == 0
        {
            return Some(now);
        }
        let wake = |at: Cycle, best: &mut Option<Cycle>| {
            let at = at.max(now);
            *best = Some(best.map_or(at, |b: Cycle| b.min(at)));
        };
        let mut best: Option<Cycle> = None;
        if let Some(&Reverse((at, _))) = self.completions.peek() {
            wake(at, &mut best);
        }
        // Retirement progress at the ROB head.
        if let Some(head) = self.rob.front() {
            if head.completed && !self.head_blocked(head, caches) {
                wake(now, &mut best);
            }
        }
        // The head store releases (or issues its write-allocate fetch).
        if let Some(s) = self.storeq.front() {
            if s.retired
                && !(self.policy.proteus_hw
                    && !self.persist_ordering_disabled
                    && self.logq.blocks_store_to(s.addr.log_grain()))
                && (caches.peek(self.id, s.addr).is_some()
                    || !self.mshr.contains_key(&s.addr.line().index()))
            {
                wake(now, &mut best);
            }
        }
        // A clwb with no unreleased same-line store performs next tick.
        if self
            .pending_clwbs
            .iter()
            .any(|c| !c.performed && !self.storeq_lines.contains_key(&c.addr.line().index()))
        {
            wake(now, &mut best);
        }
        // A log flush whose log-load data has arrived sends next tick.
        if self.logq.unsent().any(|e| {
            self.flush_meta.get(&e.id).is_some_and(|(lr, _, _)| self.lrs.data(*lr).is_some())
        }) {
            wake(now, &mut best);
        }
        if !self.held_flushes.is_empty() {
            wake(now, &mut best);
        }
        if self.pc < self.trace.uops.len() {
            match self.dispatch_stall_cause(caches) {
                None => wake(now, &mut best),
                // A log-load rejected by the load queue or LR file has
                // already probed — and mutated — the LLT by the time the
                // reject is known, so those retry windows must be
                // single-stepped to stay cycle-exact.
                Some(StallCause::LoadQFull | StallCause::LrFull)
                    if matches!(self.trace.uops[self.pc], Uop::LogLoad { .. }) =>
                {
                    wake(now, &mut best);
                }
                Some(_) => {}
            }
        }
        best
    }

    /// Earliest cycle at or after `now` at which ticking this core might
    /// perform a coherence-domain cache access, or `None` if it never
    /// will (single-owner traces, or a finished core). The parallel
    /// engine caps every quantum at the minimum horizon over all cores,
    /// so inside a quantum no worker ever reaches the snoop paths — the
    /// invariant `QuantumCaches` debug-asserts.
    ///
    /// Conservative in one direction only: the horizon may be earlier
    /// than the first real domain access (costing quantum length, never
    /// correctness).
    pub fn domain_quiet_horizon(&self, now: Cycle) -> Option<Cycle> {
        if self.done_at.is_some() {
            return None;
        }
        // In-flight domain state can touch the domain on any cycle: a
        // queued store releases, a pending clwb flushes, a ROB-resident
        // access (parked load, ATOM store, lock probe) replays.
        use proteus_types::sharing::in_coherence_domain;
        let in_flight = self.storeq.iter().any(|s| in_coherence_domain(s.addr))
            || self.pending_clwbs.iter().any(|c| in_coherence_domain(c.addr))
            || self.rob.iter().any(|e| uop_domain_addr(&e.uop).is_some());
        if in_flight {
            return Some(now);
        }
        // Nothing in flight, so the next domain access must first
        // dispatch. Dispatch is in-order at `width` uops per cycle, so
        // the first dispatch *attempt* of the domain uop at trace index
        // `nd` (which already probes the lock word for `wait-value`)
        // needs at least `ceil((nd - pc) / width) - 1` further cycles.
        let i = self.domain_uops.partition_point(|&i| (i as usize) < self.pc);
        let nd = match self.domain_uops.get(i) {
            Some(&nd) => nd as usize,
            None => return None,
        };
        let gap = nd - self.pc;
        if gap == 0 {
            return Some(now);
        }
        Some(now + ((gap - 1) / self.width) as Cycle)
    }

    /// Credits `n` skipped cycles to the dispatch-stall statistics.
    ///
    /// During a skipped window the core's state is frozen, so the
    /// dispatch path would have recorded the same stall cause on every
    /// one of those cycles; crediting them in bulk keeps `RunSummary`
    /// byte-identical with single-stepping.
    pub fn account_skipped_cycles<C: CacheAccess>(&mut self, n: u64, caches: &C) {
        if n == 0 || self.done_at.is_some() || self.pc >= self.trace.uops.len() {
            return;
        }
        let cause = self.dispatch_stall_cause(caches).unwrap_or(StallCause::IssueQFull);
        self.stats.add_stall_cycles(cause, n);
    }

    /// One-line state snapshot for debugging stuck machines. Test-only.
    #[doc(hidden)]
    pub fn debug_dump(&self) -> String {
        format!(
            "pc={}/{} next_uop={:?} rob_head={:?} storeq={:?} clwbs={} fence={} logq={} \
             atom_acks={} mshr={:?} done={:?}",
            self.pc,
            self.trace.uops.len(),
            self.trace.uops.get(self.pc),
            self.rob.front().map(|e| (e.uop, e.completed, format!("{:?}", e.state))),
            self.storeq.iter().map(|s| (s.addr, s.value, s.retired)).collect::<Vec<_>>(),
            self.pending_clwbs.len(),
            self.fence_active,
            self.logq.len(),
            self.atom_acks_outstanding,
            self.mshr.keys().collect::<Vec<_>>(),
            self.done_at,
        )
    }

    /// Hashes the externally observable simulation state — not stats, not
    /// trace bookkeeping. Used by the paranoid engine cross-check to
    /// prove skipped windows were genuinely quiescent.
    #[doc(hidden)]
    pub fn debug_fingerprint(&self, h: &mut impl std::hash::Hasher) {
        use std::hash::Hash;
        self.pc.hash(h);
        self.next_seq.hash(h);
        self.rob.len().hash(h);
        self.rob.iter().filter(|e| e.completed).count().hash(h);
        self.completions.len().hash(h);
        self.inflight_exec.hash(h);
        self.loads_in_rob.hash(h);
        self.storeq.len().hash(h);
        self.storeq.iter().filter(|s| s.retired).count().hash(h);
        self.storeq_lines.len().hash(h);
        self.pending_clwbs.len().hash(h);
        self.pending_clwbs.iter().filter(|c| c.performed).count().hash(h);
        self.fence_active.hash(h);
        self.logq.len().hash(h);
        self.lrs.in_use().hash(h);
        self.llt.len().hash(h);
        self.llt.lru_clock().hash(h);
        self.current_tx.is_some().hash(h);
        self.held_flushes.len().hash(h);
        self.atom_logged.len().hash(h);
        self.atom_acks_outstanding.hash(h);
        self.mshr.len().hash(h);
        self.parked_loads.len().hash(h);
        self.incomplete_loads.len().hash(h);
        self.next_local_id.hash(h);
        self.out.len().hash(h);
        self.done_at.hash(h);
    }
}
