#![warn(missing_docs)]
//! Cycle-level out-of-order core model with hardware logging support.
//!
//! One [`core::Core`] executes a micro-op [`proteus_core::Trace`] through a
//! model with the structural limits of Table 1 (224-entry ROB, 5-wide
//! dispatch/retire, 72/56-entry load/store queues) plus the paper's
//! logging hardware:
//!
//! * [`llt::Llt`] — the Log Lookup Table (§4.2) that elides repeated
//!   logging of the same 32-byte grain within a transaction;
//! * [`logq::LogQ`] — tracks in-flight `log-flush` operations, assigns
//!   log-to addresses in program order, and enforces the write-ahead
//!   ordering between a log flush and stores to the same grain;
//! * [`logq::LogRegFile`] — the 8 log registers holding in-flight log
//!   entries;
//! * the ATOM engine (inside [`core::Core`]) — creates log entries at
//!   store retirement and delays the store's retirement until the memory
//!   controller acknowledges the entry, reproducing ATOM's pipeline
//!   back-pressure.
//!
//! The core is driven by a surrounding system (see `proteus-sim`): each
//! cycle it is ticked with mutable access to the shared [`proteus_cache::CacheSystem`],
//! emits memory-controller requests, and receives [`proteus_mem::McEvent`]s.

pub mod core;
pub mod llt;
pub mod logq;

pub use crate::core::Core;
pub use llt::Llt;
pub use logq::{LogQ, LogRegFile};
