//! The LogQ and log register file (paper §4.2, Fig. 5).
//!
//! A `log-flush` that misses in the LLT allocates a LogQ entry at
//! dispatch; the entry holds the log-from grain, the program-order
//! log-to address, and the entry payload once the `log-load` data
//! arrives. The entry is deallocated when the memory controller
//! acknowledges receipt. Two ordering rules are enforced here:
//!
//! * log-to addresses are assigned **in program order** (allocation
//!   happens at in-order dispatch), so recovery can rely on the earliest
//!   entry per grain;
//! * a retired store may not be released to the cache while any LogQ
//!   entry for the same grain is still unacknowledged — the write-ahead
//!   invariant.

use proteus_types::addr::LogGrainAddr;
use proteus_types::Addr;

/// State of one log register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LrState {
    Free,
    /// Allocated by a `log-load`; `data` is `None` until the load
    /// completes. `elided` records an LLT hit at the log-load: the whole
    /// pair completes immediately and no data is ever loaded (§4.2).
    Pending {
        grain: LogGrainAddr,
        data: Option<[u64; 4]>,
        elided: bool,
    },
}

/// The log register file (Table 1: 8 registers).
#[derive(Debug)]
pub struct LogRegFile {
    regs: Vec<LrState>,
}

impl LogRegFile {
    /// Creates `n` free registers.
    pub fn new(n: usize) -> Self {
        LogRegFile { regs: vec![LrState::Free; n] }
    }

    /// Number of registers.
    pub fn len(&self) -> usize {
        self.regs.len()
    }

    /// Whether the file has no registers (never true for a real config).
    pub fn is_empty(&self) -> bool {
        self.regs.is_empty()
    }

    /// Registers currently allocated to a pending pair (occupancy
    /// tracing).
    pub fn in_use(&self) -> usize {
        self.regs.iter().filter(|r| !matches!(r, LrState::Free)).count()
    }

    /// Allocates register `lr` for a `log-load` of `grain`. Returns
    /// `false` if the register is still busy with an earlier pair.
    pub fn try_allocate(&mut self, lr: usize, grain: LogGrainAddr, elided: bool) -> bool {
        if self.regs[lr] != LrState::Free {
            return false;
        }
        self.regs[lr] = LrState::Pending { grain, data: None, elided };
        true
    }

    /// Delivers the `log-load` data into register `lr`.
    ///
    /// # Panics
    ///
    /// Panics if the register is free (a protocol violation).
    pub fn fill(&mut self, lr: usize, value: [u64; 4]) {
        match &mut self.regs[lr] {
            LrState::Pending { data, .. } => *data = Some(value),
            LrState::Free => panic!("fill of free log register LR{lr}"),
        }
    }

    /// The grain register `lr` is logging, if allocated.
    pub fn grain(&self, lr: usize) -> Option<LogGrainAddr> {
        match self.regs[lr] {
            LrState::Pending { grain, .. } => Some(grain),
            LrState::Free => None,
        }
    }

    /// Whether the pair in register `lr` was elided by an LLT hit.
    pub fn is_elided(&self, lr: usize) -> bool {
        matches!(self.regs[lr], LrState::Pending { elided: true, .. })
    }

    /// The loaded data, if it has arrived.
    pub fn data(&self, lr: usize) -> Option<[u64; 4]> {
        match self.regs[lr] {
            LrState::Pending { data, .. } => data,
            LrState::Free => None,
        }
    }

    /// Frees register `lr` (its `log-flush` has been sent or elided).
    pub fn free(&mut self, lr: usize) {
        self.regs[lr] = LrState::Free;
    }
}

/// One in-flight `log-flush`.
#[derive(Debug, Clone)]
pub struct LogQEntry {
    /// Correlation id used in memory-controller messages.
    pub id: u64,
    /// Log-from grain (for store-ordering checks).
    pub grain: LogGrainAddr,
    /// Program-order log-to slot address.
    pub slot: Addr,
    /// Whether the flush has been sent to the memory controller.
    pub sent: bool,
}

/// The LogQ (Table 1: 16 entries).
#[derive(Debug)]
pub struct LogQ {
    entries: Vec<LogQEntry>,
    capacity: usize,
    next_id: u64,
}

impl LogQ {
    /// Creates a LogQ with `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        LogQ { entries: Vec::with_capacity(capacity), capacity, next_id: 0 }
    }

    /// Whether a new `log-flush` can allocate an entry.
    pub fn has_space(&self) -> bool {
        self.entries.len() < self.capacity
    }

    /// Allocates an entry at dispatch (program order). Returns its id.
    ///
    /// # Panics
    ///
    /// Panics if the queue is full (callers must check
    /// [`LogQ::has_space`] and stall dispatch otherwise, as the paper
    /// requires).
    pub fn alloc(&mut self, grain: LogGrainAddr, slot: Addr) -> u64 {
        assert!(self.has_space(), "LogQ overflow: dispatch must stall");
        let id = self.next_id;
        self.next_id += 1;
        self.entries.push(LogQEntry { id, grain, slot, sent: false });
        id
    }

    /// Marks entry `id` as sent to the memory controller.
    pub fn mark_sent(&mut self, id: u64) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.id == id) {
            e.sent = true;
        }
    }

    /// Deallocates entry `id` on the controller's acknowledgement.
    pub fn ack(&mut self, id: u64) {
        self.entries.retain(|e| e.id != id);
    }

    /// Whether any unacknowledged entry targets `grain` — a retired store
    /// to this grain must stay in the store queue.
    pub fn blocks_store_to(&self, grain: LogGrainAddr) -> bool {
        self.entries.iter().any(|e| e.grain == grain)
    }

    /// Entries not yet sent (waiting for their `log-load` data).
    pub fn unsent(&self) -> impl Iterator<Item = &LogQEntry> {
        self.entries.iter().filter(|e| !e.sent)
    }

    /// Whether the queue is completely empty (tx-end condition).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grain(i: u64) -> LogGrainAddr {
        LogGrainAddr::from_index(i)
    }

    #[test]
    fn lr_lifecycle() {
        let mut lrs = LogRegFile::new(2);
        assert!(lrs.try_allocate(0, grain(1), false));
        assert!(!lrs.try_allocate(0, grain(2), false), "busy register");
        assert_eq!(lrs.grain(0), Some(grain(1)));
        assert_eq!(lrs.data(0), None);
        lrs.fill(0, [1, 2, 3, 4]);
        assert_eq!(lrs.data(0), Some([1, 2, 3, 4]));
        lrs.free(0);
        assert!(lrs.try_allocate(0, grain(2), true));
        assert!(lrs.is_elided(0));
    }

    #[test]
    #[should_panic(expected = "free log register")]
    fn fill_free_register_panics() {
        let mut lrs = LogRegFile::new(1);
        lrs.fill(0, [0; 4]);
    }

    #[test]
    fn logq_capacity_and_ordering() {
        let mut q = LogQ::new(2);
        assert!(q.has_space());
        let a = q.alloc(grain(1), Addr::new(0x8000_0000));
        let b = q.alloc(grain(2), Addr::new(0x8000_0040));
        assert!(!q.has_space());
        assert_ne!(a, b);
        q.ack(a);
        assert!(q.has_space());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn store_blocking_follows_acks() {
        let mut q = LogQ::new(4);
        let id = q.alloc(grain(7), Addr::new(0x8000_0000));
        assert!(q.blocks_store_to(grain(7)));
        assert!(!q.blocks_store_to(grain(8)));
        q.mark_sent(id);
        assert!(q.blocks_store_to(grain(7)), "sent but unacked still blocks");
        q.ack(id);
        assert!(!q.blocks_store_to(grain(7)));
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "LogQ overflow")]
    fn alloc_past_capacity_panics() {
        let mut q = LogQ::new(1);
        q.alloc(grain(0), Addr::new(0));
        q.alloc(grain(1), Addr::new(64));
    }

    #[test]
    fn unsent_iterator() {
        let mut q = LogQ::new(4);
        let a = q.alloc(grain(1), Addr::new(0));
        let _b = q.alloc(grain(2), Addr::new(64));
        q.mark_sent(a);
        let unsent: Vec<_> = q.unsent().map(|e| e.grain).collect();
        assert_eq!(unsent, vec![grain(2)]);
    }
}
