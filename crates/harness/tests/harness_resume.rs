//! End-to-end harness behaviour: checkpointing, kill/resume, panic
//! isolation, and the telemetry stream — exercised through real files,
//! with each sweep standing in for one OS process.

use proteus_harness::json::{self, Json};
use proteus_harness::{Harness, JobSpec, PayloadCodec, SweepOptions};
use proteus_types::JobOutcome;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

fn temp_file(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("proteus-harness-it-{tag}-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

fn u64_codec() -> PayloadCodec<u64> {
    PayloadCodec { encode: |v| Json::U64(*v), decode: Json::as_u64 }
}

fn jobs(n: usize) -> Vec<JobSpec> {
    (0..n).map(|i| JobSpec::new(format!("sweep/job-{i}"), 0xBEEF_0000 + i as u64)).collect()
}

/// A sweep killed after N jobs completed resumes with exactly
/// `total - N` re-runs.
#[test]
fn kill_after_n_resume_reruns_exactly_the_remainder() {
    const TOTAL: usize = 9;
    const KILLED_AFTER: usize = 4;
    let ledger = temp_file("kill");
    let opts = SweepOptions {
        workers: 2,
        max_retries: 0,
        ledger: Some(ledger.clone()),
        ..SweepOptions::default()
    };
    let harness = Harness::<u64>::new().with_codec(u64_codec());

    // "Process one": runs the first KILLED_AFTER jobs, then dies. The
    // ledger was flushed per job, so those records survive the kill.
    harness
        .run(&jobs(TOTAL)[..KILLED_AFTER], &opts, |i| Ok(i as u64))
        .expect("first partial sweep");

    // "Process two": same sweep, same ledger.
    let executed = AtomicU32::new(0);
    let report = harness
        .run(&jobs(TOTAL), &opts, |i| {
            executed.fetch_add(1, Ordering::SeqCst);
            Ok(i as u64)
        })
        .expect("resumed sweep");
    assert_eq!(
        executed.load(Ordering::SeqCst) as usize,
        TOTAL - KILLED_AFTER,
        "resume must re-run exactly the jobs the kill lost"
    );
    assert_eq!(report.resumed, KILLED_AFTER);
    assert_eq!(report.executed, TOTAL - KILLED_AFTER);
    assert!(report.is_all_completed());
    // Restored and freshly-run payloads are indistinguishable.
    for (i, r) in report.results.iter().enumerate() {
        assert_eq!(r.payload, Some(i as u64));
        assert_eq!(r.resumed, i < KILLED_AFTER);
    }
    std::fs::remove_file(&ledger).unwrap();
}

/// A panicking job is recorded as crashed in the ledger, its siblings
/// complete, and a resumed sweep re-runs only the crashed job.
#[test]
fn crashed_job_is_ledgered_and_alone_in_rerunning() {
    const TOTAL: usize = 6;
    const BAD: usize = 3;
    let ledger = temp_file("crash");
    let opts = SweepOptions {
        workers: 3,
        max_retries: 0,
        ledger: Some(ledger.clone()),
        ..SweepOptions::default()
    };
    let harness = Harness::<u64>::new().with_codec(u64_codec());

    let first = harness
        .run(&jobs(TOTAL), &opts, |i| {
            if i == BAD {
                panic!("injected failure in job {i}");
            }
            Ok(i as u64)
        })
        .expect("sweep with injected panic");
    assert_eq!(first.completed, TOTAL - 1, "siblings of the crash all completed");
    assert_eq!(first.crashed, 1);
    assert!(matches!(first.results[BAD].outcome, JobOutcome::Crashed { .. }));

    // The crash outcome is durable: parse the ledger file directly.
    let text = std::fs::read_to_string(&ledger).unwrap();
    let crashed_lines: Vec<Json> = text
        .lines()
        .map(|l| json::parse(l).expect("ledger line parses"))
        .filter(|v| v.get("outcome").and_then(Json::as_str) == Some("crashed"))
        .collect();
    assert_eq!(crashed_lines.len(), 1);
    let rec = &crashed_lines[0];
    assert_eq!(rec.get("name").unwrap().as_str(), Some("sweep/job-3"));
    assert!(rec.get("message").unwrap().as_str().unwrap().contains("injected failure in job 3"));

    // Resume: only the crashed job runs again, and this time succeeds.
    let executed = AtomicU32::new(0);
    let second = harness
        .run(&jobs(TOTAL), &opts, |i| {
            executed.fetch_add(1, Ordering::SeqCst);
            assert_eq!(i, BAD, "completed jobs must not re-run");
            Ok(i as u64)
        })
        .expect("resumed sweep");
    assert_eq!(executed.load(Ordering::SeqCst), 1);
    assert!(second.is_all_completed());
    std::fs::remove_file(&ledger).unwrap();
}

/// The telemetry stream narrates the whole lifecycle, including
/// resumed jobs and retries, as parseable JSON Lines.
#[test]
fn event_stream_narrates_resume_and_retry() {
    let ledger = temp_file("ev-ledger");
    let events = temp_file("ev-stream");
    let harness = Harness::<u64>::new().with_codec(u64_codec()).with_metric(|v| *v);
    let base = SweepOptions {
        workers: 2,
        max_retries: 1,
        ledger: Some(ledger.clone()),
        events: Some(events.clone()),
        ..SweepOptions::default()
    };

    // First run: job 1 panics once, then succeeds on retry.
    let flaky_calls = AtomicU32::new(0);
    let first = harness
        .run(&jobs(3), &base, |i| {
            if i == 1 && flaky_calls.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("transient fault");
            }
            Ok(1000 + i as u64)
        })
        .expect("first sweep");
    assert!(first.is_all_completed());
    assert_eq!(first.results[1].attempts, 2);

    // Second run resumes everything.
    harness.run(&jobs(3), &base, |i| Ok(1000 + i as u64)).expect("resumed sweep");

    let text = std::fs::read_to_string(&events).unwrap();
    let parsed: Vec<Json> =
        text.lines().map(|l| json::parse(l).expect("event line parses")).collect();
    let kind = |v: &Json| v.get("event").unwrap().as_str().unwrap().to_string();
    let count = |k: &str| parsed.iter().filter(|v| kind(v) == k).count();

    assert_eq!(count("sweep-start"), 2);
    assert_eq!(count("sweep-end"), 2);
    assert_eq!(count("job-start"), 3, "three executions in run one, zero in run two");
    assert_eq!(count("job-end"), 3);
    assert_eq!(count("job-retry"), 1);
    assert_eq!(count("job-resumed"), 3, "run two resumed all three jobs");

    // job-end events carry the metric and its rate.
    for v in parsed.iter().filter(|v| kind(v) == "job-end") {
        assert_eq!(v.get("outcome").unwrap().as_str(), Some("completed"));
        let metric = v.get("metric").unwrap().as_u64().unwrap();
        assert!((1000..=1002).contains(&metric));
        assert!(v.get("metric_per_s").unwrap().as_f64().is_some());
        assert!(v.get("queue_depth").unwrap().as_u64().is_some());
        assert!(v.get("busy_workers").unwrap().as_u64().is_some());
    }
    // The second sweep-end records 3 resumed / 0 executed.
    let last_end = parsed.iter().rev().find(|v| kind(v) == "sweep-end").unwrap();
    assert_eq!(last_end.get("resumed").unwrap().as_u64(), Some(3));
    assert_eq!(last_end.get("executed").unwrap().as_u64(), Some(0));

    std::fs::remove_file(&ledger).unwrap();
    std::fs::remove_file(&events).unwrap();
}

/// Spec hashes — not names — key the ledger: renaming a job does not
/// skip it, and an identical spec under a new name resumes.
#[test]
fn resume_keys_on_spec_hash_not_name() {
    let ledger = temp_file("hashkey");
    let opts = SweepOptions {
        workers: 1,
        max_retries: 0,
        ledger: Some(ledger.clone()),
        ..SweepOptions::default()
    };
    let harness = Harness::<u64>::new().with_codec(u64_codec());

    harness.run(&[JobSpec::new("old-name", 0x1234)], &opts, |_| Ok(7)).expect("seed run");

    // Same hash, different display name: resumes.
    let executed = AtomicU32::new(0);
    let report = harness
        .run(&[JobSpec::new("new-name", 0x1234)], &opts, |_| {
            executed.fetch_add(1, Ordering::SeqCst);
            Ok(8)
        })
        .expect("renamed run");
    assert_eq!(executed.load(Ordering::SeqCst), 0);
    assert_eq!(report.results[0].payload, Some(7), "payload comes from the ledger");

    // Different hash, same name: runs.
    let report = harness
        .run(&[JobSpec::new("new-name", 0x9999)], &opts, |_| {
            executed.fetch_add(1, Ordering::SeqCst);
            Ok(8)
        })
        .expect("changed-spec run");
    assert_eq!(executed.load(Ordering::SeqCst), 1);
    assert_eq!(report.results[0].payload, Some(8));
    std::fs::remove_file(&ledger).unwrap();
}
