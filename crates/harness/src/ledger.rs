//! Resumable run ledger.
//!
//! The ledger is a JSON Lines checkpoint file: one record is appended
//! (and flushed) the moment each job finishes, so an interrupted sweep
//! loses at most the jobs that were still in flight. Records are keyed
//! by the job's stable spec hash — *not* by its display name — so a
//! resumed sweep only skips a job when the exact same experiment
//! (config + scheme + workload + parameters) already completed.
//!
//! Re-running with the same ledger appends new records; on load, the
//! **latest record for a hash wins**. A job that crashed on the first
//! run and completed on the resume run therefore reads back as
//! completed. A truncated final line (the classic kill-mid-write
//! artifact) is tolerated and ignored on load.

use crate::json::{self, Json};
use proteus_types::{JobOutcome, SimError};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

/// Ledger file format version, bumped on incompatible record changes.
pub const LEDGER_VERSION: u64 = 1;

/// One persisted job record.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerRecord {
    /// Stable structural hash of the experiment spec.
    pub spec_hash: u64,
    /// Human-readable job name (diagnostics only; never used as a key).
    pub name: String,
    /// How the job ended.
    pub outcome: JobOutcome,
    /// Attempts consumed (1 = no retries).
    pub attempts: u32,
    /// Wall-clock seconds spent across all attempts.
    pub wall_seconds: f64,
    /// Result payload for completed jobs, as encoded by the sweep's
    /// [`crate::scheduler::PayloadCodec`]; `Json::Null` otherwise.
    pub payload: Json,
}

impl LedgerRecord {
    /// Renders the record's *deterministic* fields as one JSON line:
    /// spec hash, name, outcome (plus message), and payload — but not
    /// `attempts` or `wall_seconds`, which depend on scheduling luck.
    /// Two runs of the same sweep produce identical canonical lines per
    /// job no matter how the jobs were distributed, retried, or
    /// reassigned; the distributed-determinism check is built on this.
    pub fn canonical_line(&self) -> String {
        let mut pairs = vec![
            ("spec_hash", Json::str(format!("{:016x}", self.spec_hash))),
            ("name", Json::str(self.name.clone())),
            ("outcome", Json::str(self.outcome.label())),
        ];
        if let Some(msg) = self.outcome.message() {
            pairs.push(("message", Json::str(msg)));
        }
        pairs.push(("payload", self.payload.clone()));
        Json::obj(pairs).to_line()
    }

    /// Full record encoding, exactly as written to the ledger file
    /// (public so the service streams ledger-shaped result lines
    /// without a second codec).
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("v", Json::U64(LEDGER_VERSION)),
            ("spec_hash", Json::str(format!("{:016x}", self.spec_hash))),
            ("name", Json::str(self.name.clone())),
            ("outcome", Json::str(self.outcome.label())),
        ];
        if let Some(msg) = self.outcome.message() {
            pairs.push(("message", Json::str(msg)));
        }
        pairs.push(("attempts", Json::U64(u64::from(self.attempts))));
        pairs.push(("wall_seconds", Json::F64(self.wall_seconds)));
        pairs.push(("payload", self.payload.clone()));
        Json::obj(pairs)
    }

    /// Decodes one ledger line; `None` on malformed or foreign shapes
    /// (public so clients of the service can parse streamed result
    /// lines with the ledger's own codec).
    pub fn from_json(v: &Json) -> Option<LedgerRecord> {
        let spec_hash = u64::from_str_radix(v.get("spec_hash")?.as_str()?, 16).ok()?;
        let name = v.get("name")?.as_str()?.to_string();
        let label = v.get("outcome")?.as_str()?;
        let message = v.get("message").and_then(Json::as_str);
        let outcome = JobOutcome::from_parts(label, message)?;
        let attempts = v.get("attempts")?.as_u64()? as u32;
        let wall_seconds = v.get("wall_seconds").and_then(Json::as_f64).unwrap_or(0.0);
        let payload = v.get("payload").cloned().unwrap_or(Json::Null);
        Some(LedgerRecord { spec_hash, name, outcome, attempts, wall_seconds, payload })
    }
}

/// The set of already-finished jobs loaded from a ledger file.
///
/// Only **completed** records short-circuit a resume; failed and
/// crashed records are remembered (for reporting) but their jobs run
/// again.
#[derive(Debug, Default)]
pub struct LedgerSnapshot {
    records: HashMap<u64, LedgerRecord>,
}

impl LedgerSnapshot {
    /// Loads a snapshot from `path`. A missing file yields an empty
    /// snapshot (first run); unreadable or version-incompatible lines
    /// are skipped, and a truncated trailing line is ignored.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::HarnessIo`] if the file exists but cannot be
    /// opened or read.
    pub fn load(path: &Path) -> Result<LedgerSnapshot, SimError> {
        let file = match File::open(path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(LedgerSnapshot::default())
            }
            Err(e) => {
                return Err(SimError::HarnessIo(format!(
                    "cannot open ledger {}: {e}",
                    path.display()
                )))
            }
        };
        let mut snapshot = LedgerSnapshot::default();
        for line in BufReader::new(file).lines() {
            let line = line.map_err(|e| {
                SimError::HarnessIo(format!("cannot read ledger {}: {e}", path.display()))
            })?;
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            // A malformed line (torn write from a killed process, or a
            // record from a different version) is data loss we recover
            // from, not an error: the affected job simply re-runs.
            let Ok(v) = json::parse(trimmed) else { continue };
            if v.get("v").and_then(Json::as_u64) != Some(LEDGER_VERSION) {
                continue;
            }
            if let Some(rec) = LedgerRecord::from_json(&v) {
                snapshot.records.insert(rec.spec_hash, rec);
            }
        }
        Ok(snapshot)
    }

    /// The latest record for `spec_hash`, if any.
    pub fn get(&self, spec_hash: u64) -> Option<&LedgerRecord> {
        self.records.get(&spec_hash)
    }

    /// The latest **completed** record for `spec_hash`, if any — the
    /// resume predicate.
    pub fn completed(&self, spec_hash: u64) -> Option<&LedgerRecord> {
        self.records.get(&spec_hash).filter(|r| r.outcome.is_completed())
    }

    /// Number of distinct jobs with any record.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the snapshot holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The whole snapshot as canonical JSONL: one
    /// [`LedgerRecord::canonical_line`] per record, sorted by spec
    /// hash. Byte-identical across runs that produced the same results,
    /// regardless of execution order, worker count, retries, or which
    /// process (local sweep or distributed coordinator) wrote the
    /// underlying file.
    pub fn canonical_export(&self) -> String {
        let mut hashes: Vec<u64> = self.records.keys().copied().collect();
        hashes.sort_unstable();
        let mut out = String::new();
        for h in hashes {
            out.push_str(&self.records[&h].canonical_line());
            out.push('\n');
        }
        out
    }
}

/// Append-side handle for a ledger file.
pub struct LedgerWriter {
    path: PathBuf,
    writer: BufWriter<File>,
}

impl LedgerWriter {
    /// Opens `path` in append mode, creating it (and its parent
    /// directory) if needed.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::HarnessIo`] on any filesystem failure.
    pub fn append(path: &Path) -> Result<LedgerWriter, SimError> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(|e| {
                    SimError::HarnessIo(format!(
                        "cannot create ledger directory {}: {e}",
                        parent.display()
                    ))
                })?;
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(path).map_err(|e| {
            SimError::HarnessIo(format!("cannot open ledger {}: {e}", path.display()))
        })?;
        Ok(LedgerWriter { path: path.to_path_buf(), writer: BufWriter::new(file) })
    }

    /// Appends one record and flushes it to the OS, so a subsequent
    /// crash of this process cannot lose it.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::HarnessIo`] on write failure.
    pub fn record(&mut self, record: &LedgerRecord) -> Result<(), SimError> {
        let line = record.to_json().to_line();
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .and_then(|()| self.writer.flush())
            .map_err(|e| {
                SimError::HarnessIo(format!("cannot write ledger {}: {e}", self.path.display()))
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("proteus-ledger-{tag}-{}", std::process::id()));
        p
    }

    fn sample(hash: u64, outcome: JobOutcome) -> LedgerRecord {
        LedgerRecord {
            spec_hash: hash,
            name: format!("job-{hash:x}"),
            outcome,
            attempts: 1,
            wall_seconds: 0.25,
            payload: Json::obj([("cycles", Json::U64(1234))]),
        }
    }

    #[test]
    fn records_round_trip_through_file() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        {
            let mut w = LedgerWriter::append(&path).unwrap();
            w.record(&sample(0xabc, JobOutcome::Completed)).unwrap();
            w.record(&sample(0xdef, JobOutcome::Crashed { panic: "boom".into() })).unwrap();
        }
        let snap = LedgerSnapshot::load(&path).unwrap();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap.get(0xabc).unwrap().payload.get("cycles").unwrap().as_u64(), Some(1234));
        assert!(snap.completed(0xabc).is_some());
        assert!(snap.completed(0xdef).is_none(), "crashed records must not satisfy resume");
        assert_eq!(snap.get(0xdef).unwrap().outcome.message(), Some("boom"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_empty_snapshot() {
        let snap = LedgerSnapshot::load(Path::new("/nonexistent/proteus.jsonl")).unwrap();
        assert!(snap.is_empty());
    }

    #[test]
    fn latest_record_wins() {
        let path = temp_path("latest");
        let _ = std::fs::remove_file(&path);
        {
            let mut w = LedgerWriter::append(&path).unwrap();
            w.record(&sample(7, JobOutcome::Crashed { panic: "first try".into() })).unwrap();
        }
        {
            // Separate append session, as a resumed process would do.
            let mut w = LedgerWriter::append(&path).unwrap();
            w.record(&sample(7, JobOutcome::Completed)).unwrap();
        }
        let snap = LedgerSnapshot::load(&path).unwrap();
        assert_eq!(snap.len(), 1);
        assert!(snap.completed(7).is_some());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn canonical_export_is_order_independent_and_drops_timing() {
        let path_a = temp_path("canon-a");
        let path_b = temp_path("canon-b");
        let _ = std::fs::remove_file(&path_a);
        let _ = std::fs::remove_file(&path_b);
        {
            let mut w = LedgerWriter::append(&path_a).unwrap();
            w.record(&sample(2, JobOutcome::Completed)).unwrap();
            w.record(&sample(1, JobOutcome::Failed { error: "nope".into() })).unwrap();
        }
        {
            // Same results, opposite completion order, different timing.
            let mut w = LedgerWriter::append(&path_b).unwrap();
            let mut r1 = sample(1, JobOutcome::Failed { error: "nope".into() });
            r1.attempts = 3;
            r1.wall_seconds = 99.0;
            w.record(&r1).unwrap();
            w.record(&sample(2, JobOutcome::Completed)).unwrap();
        }
        let a = LedgerSnapshot::load(&path_a).unwrap().canonical_export();
        let b = LedgerSnapshot::load(&path_b).unwrap().canonical_export();
        assert_eq!(a, b, "canonical form is independent of order and timing");
        assert!(!a.contains("wall_seconds"));
        assert!(!a.contains("attempts"));
        assert!(a.contains(r#""message":"nope""#));
        let first = a.lines().next().unwrap();
        assert!(first.contains("0000000000000001"), "sorted by spec hash: {first}");
        std::fs::remove_file(&path_a).unwrap();
        std::fs::remove_file(&path_b).unwrap();
    }

    #[test]
    fn truncated_tail_and_junk_lines_are_skipped() {
        let path = temp_path("torn");
        let _ = std::fs::remove_file(&path);
        {
            let mut w = LedgerWriter::append(&path).unwrap();
            w.record(&sample(1, JobOutcome::Completed)).unwrap();
        }
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            writeln!(f, "not json at all").unwrap();
            writeln!(f, "{}", r#"{"v":999,"spec_hash":"02","outcome":"completed""#).unwrap();
            // Torn final line: no newline, cut mid-record.
            write!(f, "{}", r#"{"v":1,"spec_hash":"0000000000000003","out"#).unwrap();
        }
        let snap = LedgerSnapshot::load(&path).unwrap();
        assert_eq!(snap.len(), 1, "only the intact, version-matched record survives");
        assert!(snap.completed(1).is_some());
        std::fs::remove_file(&path).unwrap();
    }
}
