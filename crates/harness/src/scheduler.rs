//! Job scheduler: worker pool, panic isolation, retries, resume.
//!
//! A sweep is a list of [`JobSpec`]s plus a closure that executes one
//! job by index. The harness runs jobs on a shared-queue worker pool
//! (configurable width, default = available parallelism), catches
//! panics per attempt so one crashing experiment cannot take down its
//! siblings, retries crashed attempts up to a bounded budget, and —
//! when given a ledger path — checkpoints every terminal outcome so an
//! interrupted sweep can resume, skipping exactly the jobs whose spec
//! hash already completed.
//!
//! The scheduler is deliberately free of third-party dependencies:
//! `std::thread::scope` for the pool, a `Mutex<VecDeque>` for the
//! queue, and an `mpsc` channel feeding a single coordinator (the
//! calling thread) that owns all file I/O. Workers never touch the
//! ledger or event stream, so output records are never interleaved.

use crate::events::{EventSink, Gauges};
use crate::json::Json;
use crate::ledger::{LedgerRecord, LedgerSnapshot, LedgerWriter};
use crate::report::human_rate;
use proteus_types::{JobOutcome, SimError};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::Instant;

/// Identity of one schedulable job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Human-readable name (`<bench>/<scheme>` for experiment jobs).
    pub name: String,
    /// Stable structural hash of the full experiment spec; the resume
    /// key. Two jobs with equal hashes are the same experiment.
    pub spec_hash: u64,
}

impl JobSpec {
    /// Builds a job spec.
    pub fn new(name: impl Into<String>, spec_hash: u64) -> JobSpec {
        JobSpec { name: name.into(), spec_hash }
    }
}

/// Serialisation bridge between a job's payload type and the ledger's
/// JSON records. Plain function pointers so the codec is `Copy` and
/// trivially shareable across threads.
pub struct PayloadCodec<T> {
    /// Encodes a payload for the ledger.
    pub encode: fn(&T) -> Json,
    /// Decodes a ledger payload; `None` marks an unreadable record,
    /// which makes the job re-run instead of resuming.
    pub decode: fn(&Json) -> Option<T>,
}

impl<T> Clone for PayloadCodec<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for PayloadCodec<T> {}

/// Knobs for one sweep.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Worker threads; `0` means available parallelism. Always clamped
    /// to the job count.
    pub workers: usize,
    /// Extra attempts for a job whose attempt *panicked*. Clean `Err`
    /// returns are deterministic simulator errors and never retried.
    pub max_retries: u32,
    /// Resume ledger path. Completed jobs found here are skipped;
    /// every terminal outcome of this run is appended.
    pub ledger: Option<PathBuf>,
    /// Telemetry event stream path (JSON Lines, append).
    pub events: Option<PathBuf>,
    /// Force every telemetry event to stable storage (`fdatasync` per
    /// event) instead of just flushing to the OS. Survives machine
    /// crashes, not merely killed processes; costs one sync per event.
    pub events_fsync: bool,
    /// Emit a human progress line to stderr per finished job.
    pub progress: bool,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            workers: 0,
            max_retries: 1,
            ledger: None,
            events: None,
            events_fsync: false,
            progress: false,
        }
    }
}

/// Terminal state of one job after a sweep.
#[derive(Debug, Clone)]
pub struct JobResult<T> {
    /// Job name, as given in the [`JobSpec`].
    pub name: String,
    /// Spec hash, as given in the [`JobSpec`].
    pub spec_hash: u64,
    /// How the job ended.
    pub outcome: JobOutcome,
    /// Payload for completed jobs.
    pub payload: Option<T>,
    /// Attempts consumed this run (0 when resumed from the ledger).
    pub attempts: u32,
    /// Wall-clock seconds across this run's attempts (0 when resumed).
    pub wall_seconds: f64,
    /// Whether the result was restored from the ledger rather than
    /// executed.
    pub resumed: bool,
}

/// Aggregate result of a sweep. `results` is in input-job order.
#[derive(Debug)]
pub struct SweepReport<T> {
    /// Per-job results, index-aligned with the input jobs.
    pub results: Vec<JobResult<T>>,
    /// Wall-clock seconds for the whole sweep.
    pub wall_seconds: f64,
    /// Worker threads used.
    pub workers: usize,
    /// Jobs actually executed this run.
    pub executed: usize,
    /// Jobs skipped via the resume ledger.
    pub resumed: usize,
    /// Jobs (executed or resumed) that completed.
    pub completed: usize,
    /// Jobs that ended failed.
    pub failed: usize,
    /// Jobs that ended crashed.
    pub crashed: usize,
    /// Sum of the progress metric over executed completed jobs.
    pub total_metric: u64,
    /// Sum of per-job wall seconds over executed jobs (for worker
    /// utilisation: `busy_seconds / (workers * wall_seconds)`).
    pub busy_seconds: f64,
}

impl<T> SweepReport<T> {
    /// Whether every job completed.
    pub fn is_all_completed(&self) -> bool {
        self.failed == 0 && self.crashed == 0
    }

    /// The first non-completed job in input order, if any.
    pub fn first_failure(&self) -> Option<&JobResult<T>> {
        self.results.iter().find(|r| !r.outcome.is_completed())
    }

    /// Fraction of worker capacity spent executing jobs, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        let capacity = self.workers as f64 * self.wall_seconds;
        if capacity > 0.0 {
            (self.busy_seconds / capacity).min(1.0)
        } else {
            0.0
        }
    }

    /// One-line human summary of the sweep.
    pub fn summary_line(&self) -> String {
        let mut line = format!(
            "{} jobs in {:.2}s on {} workers ({:.0}% util): {} completed",
            self.results.len(),
            self.wall_seconds,
            self.workers,
            self.utilization() * 100.0,
            self.completed,
        );
        if self.resumed > 0 {
            line.push_str(&format!(" ({} resumed)", self.resumed));
        }
        if self.failed > 0 {
            line.push_str(&format!(", {} failed", self.failed));
        }
        if self.crashed > 0 {
            line.push_str(&format!(", {} crashed", self.crashed));
        }
        if self.total_metric > 0 && self.wall_seconds > 0.0 {
            line.push_str(&format!(
                ", {} sim-cycles/s",
                human_rate(self.total_metric as f64 / self.wall_seconds)
            ));
        }
        line
    }
}

/// A configured sweep executor for payloads of type `T`.
pub struct Harness<T> {
    codec: Option<PayloadCodec<T>>,
    metric: fn(&T) -> u64,
}

impl<T> Default for Harness<T> {
    fn default() -> Self {
        Harness::new()
    }
}

/// Messages from workers to the coordinator.
enum Msg<T> {
    Started {
        index: usize,
        worker: usize,
        gauges: Gauges,
    },
    Retry {
        index: usize,
        attempt: u32,
        outcome: JobOutcome,
    },
    Finished {
        index: usize,
        outcome: JobOutcome,
        payload: Option<T>,
        attempts: u32,
        wall_seconds: f64,
        gauges: Gauges,
    },
}

impl<T> Harness<T> {
    /// A harness with no codec (in-memory sweeps only) and a zero
    /// metric.
    pub fn new() -> Harness<T> {
        Harness { codec: None, metric: |_| 0 }
    }

    /// Sets the payload codec, enabling ledger checkpoint/resume.
    pub fn with_codec(mut self, codec: PayloadCodec<T>) -> Harness<T> {
        self.codec = Some(codec);
        self
    }

    /// Sets the progress metric extracted from completed payloads
    /// (simulated cycles for experiment jobs).
    pub fn with_metric(mut self, metric: fn(&T) -> u64) -> Harness<T> {
        self.metric = metric;
        self
    }
}

impl<T: Send> Harness<T> {
    /// Runs `jobs` through `run_job` under `opts`.
    ///
    /// `run_job` receives the job's index into `jobs` and returns the
    /// payload or a rendered error message. Panics inside `run_job` are
    /// caught and recorded as [`JobOutcome::Crashed`]; they never
    /// propagate.
    ///
    /// # Errors
    ///
    /// Only infrastructure failures ([`SimError::HarnessIo`]) are
    /// errors; job failures are reported in the returned
    /// [`SweepReport`].
    pub fn run<F>(
        &self,
        jobs: &[JobSpec],
        opts: &SweepOptions,
        run_job: F,
    ) -> Result<SweepReport<T>, SimError>
    where
        F: Fn(usize) -> Result<T, String> + Sync,
    {
        let codec = match (&opts.ledger, self.codec) {
            (Some(_), None) => {
                return Err(SimError::HarnessIo(
                    "a resume ledger requires a payload codec (Harness::with_codec)".to_string(),
                ))
            }
            (_, codec) => codec,
        };
        let sweep_start = Instant::now();

        // -- Resume: restore completed jobs from the ledger. ----------
        let snapshot = match &opts.ledger {
            Some(path) => LedgerSnapshot::load(path)?,
            None => LedgerSnapshot::default(),
        };
        let mut slots: Vec<Option<JobResult<T>>> = Vec::with_capacity(jobs.len());
        let mut pending: VecDeque<usize> = VecDeque::new();
        for (i, job) in jobs.iter().enumerate() {
            let restored = snapshot.completed(job.spec_hash).and_then(|rec| {
                let codec = codec?;
                let payload = (codec.decode)(&rec.payload)?;
                Some(JobResult {
                    name: job.name.clone(),
                    spec_hash: job.spec_hash,
                    outcome: JobOutcome::Completed,
                    payload: Some(payload),
                    attempts: 0,
                    wall_seconds: 0.0,
                    resumed: true,
                })
            });
            match restored {
                Some(result) => slots.push(Some(result)),
                None => {
                    pending.push_back(i);
                    slots.push(None);
                }
            }
        }
        let resumed = jobs.len() - pending.len();
        let to_execute = pending.len();

        let workers = resolve_workers(opts.workers, to_execute);

        let mut ledger = match &opts.ledger {
            Some(path) => Some(LedgerWriter::append(path)?),
            None => None,
        };
        let mut events = match &opts.events {
            Some(path) => Some(EventSink::open_with_fsync(path, opts.events_fsync)?),
            None => None,
        };
        if let Some(sink) = events.as_mut() {
            sink.sweep_start(jobs.len(), resumed, workers);
            for (i, job) in jobs.iter().enumerate() {
                if slots[i].is_some() {
                    sink.job_resumed(&job.name, job.spec_hash);
                }
            }
        }

        // -- Execute. -------------------------------------------------
        let queue = Mutex::new(pending);
        let busy = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<Msg<T>>();
        let max_attempts = opts.max_retries.saturating_add(1);
        let mut io_error: Option<SimError> = None;
        let mut report_counts = (0usize, 0u64, 0f64); // finished, metric, busy_seconds

        std::thread::scope(|scope| {
            for worker_id in 0..workers {
                let tx = tx.clone();
                let queue = &queue;
                let busy = &busy;
                let run_job = &run_job;
                scope.spawn(move || {
                    loop {
                        let Some(index) = queue.lock().expect("queue lock").pop_front() else {
                            break;
                        };
                        let now_busy = busy.fetch_add(1, Ordering::SeqCst) + 1;
                        let gauges = Gauges {
                            queue_depth: queue.lock().expect("queue lock").len(),
                            busy_workers: now_busy,
                        };
                        if tx.send(Msg::Started { index, worker: worker_id, gauges }).is_err() {
                            break;
                        }
                        let started = Instant::now();
                        let mut attempts = 0u32;
                        let (outcome, payload) = loop {
                            attempts += 1;
                            match catch_unwind(AssertUnwindSafe(|| run_job(index))) {
                                Ok(Ok(payload)) => break (JobOutcome::Completed, Some(payload)),
                                Ok(Err(error)) => {
                                    // Clean errors are deterministic;
                                    // retrying cannot help.
                                    break (JobOutcome::Failed { error }, None);
                                }
                                Err(panic_payload) => {
                                    let outcome = JobOutcome::Crashed {
                                        panic: panic_message(panic_payload.as_ref()),
                                    };
                                    if attempts < max_attempts {
                                        let _ = tx.send(Msg::Retry {
                                            index,
                                            attempt: attempts,
                                            outcome,
                                        });
                                        continue;
                                    }
                                    break (outcome, None);
                                }
                            }
                        };
                        let wall_seconds = started.elapsed().as_secs_f64();
                        let now_busy = busy.fetch_sub(1, Ordering::SeqCst) - 1;
                        let gauges = Gauges {
                            queue_depth: queue.lock().expect("queue lock").len(),
                            busy_workers: now_busy,
                        };
                        let _ = tx.send(Msg::Finished {
                            index,
                            outcome,
                            payload,
                            attempts,
                            wall_seconds,
                            gauges,
                        });
                    }
                });
            }
            drop(tx);

            // -- Coordinate: single owner of ledger/events/stderr. ----
            let mut finished = 0usize;
            while finished < to_execute {
                let Ok(msg) = rx.recv() else { break };
                match msg {
                    Msg::Started { index, worker, gauges } => {
                        let job = &jobs[index];
                        if let Some(sink) = events.as_mut() {
                            sink.job_start(&job.name, job.spec_hash, worker, gauges);
                        }
                    }
                    Msg::Retry { index, attempt, outcome } => {
                        let job = &jobs[index];
                        if let Some(sink) = events.as_mut() {
                            sink.job_retry(&job.name, attempt, &outcome);
                        }
                        if opts.progress {
                            eprintln!(
                                "[harness] retrying {} after attempt {attempt} {outcome}",
                                job.name
                            );
                        }
                    }
                    Msg::Finished { index, outcome, payload, attempts, wall_seconds, gauges } => {
                        finished += 1;
                        let job = &jobs[index];
                        let metric = payload.as_ref().map(self.metric).unwrap_or(0);
                        if let Some(w) = ledger.as_mut() {
                            let encoded = match (&payload, codec) {
                                (Some(p), Some(c)) => (c.encode)(p),
                                _ => Json::Null,
                            };
                            let record = LedgerRecord {
                                spec_hash: job.spec_hash,
                                name: job.name.clone(),
                                outcome: outcome.clone(),
                                attempts,
                                wall_seconds,
                                payload: encoded,
                            };
                            if let Err(e) = w.record(&record) {
                                // Losing the checkpoint is fatal for the
                                // sweep's contract. Stop dispatching new
                                // jobs; in-flight ones drain.
                                if io_error.is_none() {
                                    io_error = Some(e);
                                    queue.lock().expect("queue lock").clear();
                                }
                            }
                        }
                        if let Some(sink) = events.as_mut() {
                            sink.job_end(
                                &job.name,
                                job.spec_hash,
                                &outcome,
                                attempts,
                                wall_seconds,
                                metric,
                                gauges,
                            );
                        }
                        if opts.progress {
                            let done = finished + resumed;
                            let rate = if wall_seconds > 0.0 && metric > 0 {
                                format!(
                                    ", {} sim-cycles/s",
                                    human_rate(metric as f64 / wall_seconds)
                                )
                            } else {
                                String::new()
                            };
                            eprintln!(
                                "[harness {done}/{}] {} {} in {wall_seconds:.2}s{rate}",
                                jobs.len(),
                                outcome.label(),
                                job.name,
                            );
                        }
                        report_counts.0 += 1;
                        report_counts.1 += metric;
                        report_counts.2 += wall_seconds;
                        slots[index] = Some(JobResult {
                            name: job.name.clone(),
                            spec_hash: job.spec_hash,
                            outcome,
                            payload,
                            attempts,
                            wall_seconds,
                            resumed: false,
                        });
                    }
                }
            }
        });

        if let Some(e) = io_error {
            return Err(e);
        }

        // Every pending job sent exactly one `Finished`, every resumed
        // slot was filled up front; a hole here is a scheduler bug.
        let results: Vec<JobResult<T>> = slots
            .into_iter()
            .map(|slot| slot.expect("scheduler invariant: every job reaches a terminal outcome"))
            .collect();

        let wall_seconds = sweep_start.elapsed().as_secs_f64();
        let completed = results.iter().filter(|r| r.outcome.is_completed()).count();
        let failed =
            results.iter().filter(|r| matches!(r.outcome, JobOutcome::Failed { .. })).count();
        let crashed =
            results.iter().filter(|r| matches!(r.outcome, JobOutcome::Crashed { .. })).count();
        let report = SweepReport {
            results,
            wall_seconds,
            workers,
            executed: report_counts.0,
            resumed,
            completed,
            failed,
            crashed,
            total_metric: report_counts.1,
            busy_seconds: report_counts.2,
        };
        if let Some(sink) = events.as_mut() {
            sink.sweep_end(
                report.executed,
                report.resumed,
                report.completed,
                report.failed,
                report.crashed,
                report.wall_seconds,
                report.total_metric,
            );
        }
        if opts.progress {
            eprintln!("[harness] {}", report.summary_line());
        }
        Ok(report)
    }
}

fn resolve_workers(requested: usize, jobs: usize) -> usize {
    let auto =
        || std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1);
    let width = if requested == 0 { auto() } else { requested };
    width.clamp(1, jobs.max(1))
}

/// Renders a caught panic payload. `panic!("...")` yields `&str`,
/// `panic!("{x}")` yields `String`; anything else gets a placeholder.
/// Public so other executors (the distributed service's workers) render
/// panics identically to the local scheduler.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    fn u64_codec() -> PayloadCodec<u64> {
        PayloadCodec { encode: |v| Json::U64(*v), decode: Json::as_u64 }
    }

    fn jobs(n: usize) -> Vec<JobSpec> {
        (0..n).map(|i| JobSpec::new(format!("job-{i}"), 0x1000 + i as u64)).collect()
    }

    fn quiet(workers: usize) -> SweepOptions {
        SweepOptions { workers, max_retries: 0, ..SweepOptions::default() }
    }

    #[test]
    fn results_preserve_input_order() {
        let harness = Harness::<u64>::new();
        let report = harness.run(&jobs(16), &quiet(4), |i| Ok(i as u64 * 10)).unwrap();
        assert_eq!(report.executed, 16);
        assert!(report.is_all_completed());
        for (i, r) in report.results.iter().enumerate() {
            assert_eq!(r.payload, Some(i as u64 * 10));
            assert_eq!(r.name, format!("job-{i}"));
            assert!(!r.resumed);
            assert_eq!(r.attempts, 1);
        }
    }

    #[test]
    fn panic_is_isolated_and_siblings_complete() {
        let harness = Harness::<u64>::new();
        let report = harness
            .run(&jobs(8), &quiet(3), |i| {
                if i == 5 {
                    panic!("injected crash in job {i}");
                }
                Ok(i as u64)
            })
            .unwrap();
        assert_eq!(report.completed, 7);
        assert_eq!(report.crashed, 1);
        let crashed = &report.results[5];
        assert_eq!(crashed.outcome.label(), "crashed");
        assert!(crashed.outcome.message().unwrap().contains("injected crash in job 5"));
        assert!(crashed.payload.is_none());
        let first = report.first_failure().unwrap();
        assert_eq!(first.name, "job-5");
    }

    #[test]
    fn crashed_attempts_retry_up_to_budget() {
        let calls = AtomicU32::new(0);
        let harness = Harness::<u64>::new();
        let opts = SweepOptions { workers: 1, max_retries: 2, ..SweepOptions::default() };
        let report = harness
            .run(&jobs(1), &opts, |_| {
                calls.fetch_add(1, Ordering::SeqCst);
                panic!("always");
            })
            .unwrap();
        assert_eq!(calls.load(Ordering::SeqCst), 3, "1 attempt + 2 retries");
        assert_eq!(report.results[0].attempts, 3);
        assert_eq!(report.crashed, 1);
    }

    #[test]
    fn transient_panic_recovers_via_retry() {
        let calls = AtomicU32::new(0);
        let harness = Harness::<u64>::new();
        let opts = SweepOptions { workers: 1, max_retries: 1, ..SweepOptions::default() };
        let report = harness
            .run(&jobs(1), &opts, |_| {
                if calls.fetch_add(1, Ordering::SeqCst) == 0 {
                    panic!("flaky once");
                }
                Ok(99)
            })
            .unwrap();
        assert_eq!(report.completed, 1);
        assert_eq!(report.results[0].attempts, 2);
        assert_eq!(report.results[0].payload, Some(99));
    }

    #[test]
    fn clean_errors_fail_fast_without_retry() {
        let calls = AtomicU32::new(0);
        let harness = Harness::<u64>::new();
        let opts = SweepOptions { workers: 1, max_retries: 5, ..SweepOptions::default() };
        let report = harness
            .run(&jobs(1), &opts, |_| {
                calls.fetch_add(1, Ordering::SeqCst);
                Err("deterministic config error".to_string())
            })
            .unwrap();
        assert_eq!(calls.load(Ordering::SeqCst), 1, "clean errors are not retried");
        assert_eq!(report.failed, 1);
        assert_eq!(report.results[0].outcome.message(), Some("deterministic config error"));
    }

    #[test]
    fn ledger_resume_skips_completed_jobs() {
        let mut path = std::env::temp_dir();
        path.push(format!("proteus-sched-resume-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let harness = Harness::<u64>::new().with_codec(u64_codec()).with_metric(|v| *v);
        let opts = SweepOptions {
            workers: 2,
            max_retries: 0,
            ledger: Some(path.clone()),
            ..SweepOptions::default()
        };

        // First run: job 2 crashes, the rest complete.
        let first = harness
            .run(&jobs(5), &opts, |i| {
                if i == 2 {
                    panic!("crash on first run");
                }
                Ok(100 + i as u64)
            })
            .unwrap();
        assert_eq!(first.completed, 4);
        assert_eq!(first.crashed, 1);
        assert_eq!(first.resumed, 0);

        // Second run: only the crashed job re-executes.
        let executed = AtomicU32::new(0);
        let second = harness
            .run(&jobs(5), &opts, |i| {
                executed.fetch_add(1, Ordering::SeqCst);
                Ok(100 + i as u64)
            })
            .unwrap();
        assert_eq!(executed.load(Ordering::SeqCst), 1, "exactly the crashed job re-runs");
        assert_eq!(second.resumed, 4);
        assert_eq!(second.executed, 1);
        assert!(second.is_all_completed());
        for (i, r) in second.results.iter().enumerate() {
            assert_eq!(r.payload, Some(100 + i as u64), "payloads restored from ledger");
            assert_eq!(r.resumed, i != 2);
        }
        assert_eq!(second.total_metric, 102, "metric counts executed jobs only");

        // Third run: nothing left to do.
        let third = harness
            .run(&jobs(5), &opts, |_| -> Result<u64, String> {
                panic!("must not execute anything")
            })
            .unwrap();
        assert_eq!(third.executed, 0);
        assert_eq!(third.resumed, 5);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn ledger_without_codec_is_rejected() {
        let harness = Harness::<u64>::new();
        let opts = SweepOptions {
            ledger: Some(std::env::temp_dir().join("unused.jsonl")),
            ..SweepOptions::default()
        };
        let err = harness.run(&jobs(1), &opts, |_| Ok(0)).unwrap_err();
        assert!(matches!(err, SimError::HarnessIo(_)), "{err}");
    }

    #[test]
    fn empty_job_list_yields_empty_report() {
        let harness = Harness::<u64>::new();
        let report = harness.run(&[], &quiet(4), |_| Ok(0)).unwrap();
        assert!(report.results.is_empty());
        assert_eq!(report.executed + report.resumed, 0);
        assert!(report.is_all_completed());
    }

    #[test]
    fn worker_width_clamps_to_job_count() {
        assert_eq!(resolve_workers(8, 3), 3);
        assert_eq!(resolve_workers(2, 3), 2);
        assert_eq!(resolve_workers(0, 1), 1);
        assert!(resolve_workers(0, 64) >= 1);
    }
}
