//! Minimal JSON tree, emitter, and parser.
//!
//! The harness persists its ledger and event stream as JSON Lines. The
//! workspace deliberately has no `serde_json` dependency (it must build
//! in offline environments with no registry at all), and the payloads
//! involved are small machine-written records — so a ~300-line
//! self-contained implementation is the right tool: no reflection, no
//! derive, exact `u64` round-trips for cycle counters and hashes.
//!
//! Numbers are kept in three lanes (`U64`/`I64`/`F64`) so 64-bit
//! counters survive a round-trip exactly instead of being squeezed
//! through an `f64` mantissa.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value. Objects preserve insertion order (stable output makes
/// ledgers diffable).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Non-negative integer (exact).
    U64(u64),
    /// Negative integer (exact).
    I64(i64),
    /// Everything else numeric.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object as an ordered list of key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64`, if exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::U64(v) => Some(v),
            Json::I64(v) => u64::try_from(v).ok(),
            Json::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= 2f64.powi(53) => Some(v as u64),
            _ => None,
        }
    }

    /// The value as `usize`, if exactly representable.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|v| usize::try_from(v).ok())
    }

    /// The value as `f64` (any numeric lane).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::U64(v) => Some(v as f64),
            Json::I64(v) => Some(v as f64),
            Json::F64(v) => Some(v),
            _ => None,
        }
    }

    /// The value as `&str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialises to a compact single-line string.
    pub fn to_line(&self) -> String {
        let mut out = String::with_capacity(128);
        self.write_to(&mut out);
        out
    }

    fn write_to(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::U64(v) => {
                let _ = fmt::Write::write_fmt(out, format_args!("{v}"));
            }
            Json::I64(v) => {
                let _ = fmt::Write::write_fmt(out, format_args!("{v}"));
            }
            Json::F64(v) => {
                if v.is_finite() {
                    // `{:?}` prints a shortest round-trippable float and
                    // always includes a '.' or exponent.
                    let _ = fmt::Write::write_fmt(out, format_args!("{v:?}"));
                } else {
                    // JSON has no Inf/NaN; null is the standard fallback.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_to(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_to(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one JSON document from `input` (surrounding whitespace
/// allowed, trailing garbage rejected).
///
/// # Errors
///
/// Returns a message with the byte offset of the first syntax error.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        let mut seen: BTreeMap<String, usize> = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            // Last duplicate key wins, matching common JSON parsers.
            if let Some(&i) = seen.get(&key) {
                pairs[i].1 = value;
            } else {
                seen.insert(key.clone(), pairs.len());
                pairs.push((key, value));
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: require a following
                                // \uXXXX low surrogate.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                            continue; // hex4 advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume the maximal run of unescaped bytes as one
                    // slice (input is a &str, so boundaries are valid).
                    // Validating only the run keeps parsing linear in
                    // the document size.
                    let start = self.pos;
                    while !matches!(self.peek(), None | Some(b'"' | b'\\')) {
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(run);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut cp = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(self.err("expected 4 hex digits")),
            };
            cp = cp * 16 + d;
            self.pos += 1;
        }
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ascii");
        if text.is_empty() || text == "-" {
            return Err(self.err("malformed number"));
        }
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(v) = stripped.parse::<u64>() {
                    // i64::MIN's magnitude overflows i64; wrapping_neg
                    // maps it (and only it) back correctly.
                    if v <= i64::MIN.unsigned_abs() {
                        return Ok(Json::I64((v as i64).wrapping_neg()));
                    }
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U64(v));
            }
        }
        text.parse::<f64>().map(Json::F64).map_err(|_| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: &Json) -> Json {
        parse(&v.to_line()).expect("round trip parse")
    }

    #[test]
    fn scalars_round_trip() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::U64(0),
            Json::U64(u64::MAX),
            Json::I64(-42),
            Json::I64(i64::MIN),
            Json::F64(1.5),
            Json::F64(-0.25),
            Json::str("hello"),
            Json::str(""),
        ] {
            assert_eq!(round_trip(&v), v, "{}", v.to_line());
        }
    }

    #[test]
    fn u64_counters_are_exact() {
        // 2^63 + 3 is not representable in f64; it must survive anyway.
        let v = Json::U64((1 << 63) + 3);
        assert_eq!(v.to_line(), "9223372036854775811");
        assert_eq!(round_trip(&v).as_u64(), Some((1 << 63) + 3));
    }

    #[test]
    fn strings_escape_and_unescape() {
        let nasty = "a\"b\\c\nd\te\r\u{1}\u{7f}∂élta";
        let v = Json::str(nasty);
        let line = v.to_line();
        assert!(!line.contains('\n'), "JSONL values must stay on one line");
        assert_eq!(round_trip(&v), v);
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(parse(r#""Aé""#).unwrap(), Json::str("Aé"));
        // Surrogate pair: U+1F600.
        assert_eq!(parse(r#""😀""#).unwrap(), Json::str("😀"));
        assert!(parse(r#""\ud83d""#).is_err(), "lone surrogate rejected");
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = Json::obj([
            ("name", Json::str("QE/Proteus")),
            ("hash", Json::str("0xdeadbeef")),
            ("cycles", Json::U64(123_456_789)),
            ("ratio", Json::F64(0.5)),
            ("tags", Json::Arr(vec![Json::str("a"), Json::Null, Json::U64(7)])),
            ("nested", Json::obj([("ok", Json::Bool(true))])),
        ]);
        assert_eq!(round_trip(&v), v);
    }

    #[test]
    fn object_key_order_is_preserved() {
        let v = Json::obj([("z", Json::U64(1)), ("a", Json::U64(2))]);
        assert_eq!(v.to_line(), r#"{"z":1,"a":2}"#);
        assert_eq!(v.get("a"), Some(&Json::U64(2)));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn duplicate_keys_last_wins() {
        let v = parse(r#"{"a":1,"a":2}"#).unwrap();
        assert_eq!(v.get("a"), Some(&Json::U64(2)));
    }

    #[test]
    fn whitespace_tolerated_garbage_rejected() {
        assert!(parse("  { \"a\" : [ 1 , 2 ] }\n").is_ok());
        assert!(parse("{}extra").is_err());
        assert!(parse("").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("-").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn non_finite_floats_serialise_as_null() {
        assert_eq!(Json::F64(f64::NAN).to_line(), "null");
        assert_eq!(Json::F64(f64::INFINITY).to_line(), "null");
    }

    #[test]
    fn accessor_lanes() {
        assert_eq!(Json::U64(5).as_f64(), Some(5.0));
        assert_eq!(Json::F64(5.0).as_u64(), Some(5));
        assert_eq!(Json::F64(5.5).as_u64(), None);
        assert_eq!(Json::I64(-1).as_u64(), None);
        assert_eq!(Json::str("x").as_u64(), None);
        assert_eq!(Json::Bool(true).as_bool(), Some(true));
        assert_eq!(Json::Arr(vec![]).as_arr().map(<[Json]>::len), Some(0));
    }
}
