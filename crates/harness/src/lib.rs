#![warn(missing_docs)]
//! Experiment orchestration for the Proteus NVM logging simulator.
//!
//! A full reproduction sweep is hundreds of simulator runs, each
//! minutes long at paper scale. This crate owns the machinery that
//! makes such sweeps practical:
//!
//! - **Scheduling** ([`scheduler`]): a shared-queue worker pool with a
//!   configurable width and input-order result collection.
//! - **Panic isolation**: each job attempt runs under `catch_unwind`;
//!   a crashing experiment is recorded as
//!   [`proteus_types::JobOutcome::Crashed`] (with bounded retry)
//!   instead of killing its siblings.
//! - **Resumable ledger** ([`ledger`]): a JSON Lines checkpoint keyed
//!   by the experiment's stable spec hash
//!   ([`proteus_types::StableHash`]), appended and flushed as each job
//!   finishes. Re-running the sweep with the same ledger skips
//!   already-completed jobs and restores their payloads.
//! - **Telemetry** ([`events`]): a structured JSON Lines event stream
//!   (job start/retry/end, simulated cycles, sim-cycles-per-second,
//!   queue depth, busy workers) plus a human progress line.
//!
//! The crate depends only on `std` and `proteus-types`: it is the
//! layer that must not fail, so it takes no dependencies that could
//! be missing (offline builds) or could themselves panic.
//!
//! # Example
//!
//! ```
//! use proteus_harness::{Harness, JobSpec, SweepOptions};
//!
//! let jobs: Vec<JobSpec> =
//!     (0..4).map(|i| JobSpec::new(format!("double/{i}"), 0xC0FFEE + i)).collect();
//! let report = Harness::<u64>::new()
//!     .run(&jobs, &SweepOptions::default(), |i| Ok(i as u64 * 2))
//!     .unwrap();
//! assert!(report.is_all_completed());
//! assert_eq!(report.results[3].payload, Some(6));
//! ```

pub mod events;
pub mod json;
pub mod ledger;
pub mod report;
pub mod scheduler;

pub use events::{load_events, EventSink, Gauges};
pub use json::Json;
pub use ledger::{LedgerRecord, LedgerSnapshot, LedgerWriter};
pub use report::human_rate;
pub use scheduler::{
    panic_message, Harness, JobResult, JobSpec, PayloadCodec, SweepOptions, SweepReport,
};
