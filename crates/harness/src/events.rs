//! Structured telemetry event stream.
//!
//! When a sweep is given an events path, the harness appends one JSON
//! Lines record per lifecycle transition: `sweep-start`, `job-start`,
//! `job-retry`, `job-resumed`, `job-end`, `sweep-end`. Events carry
//! monotonic timestamps (seconds since sweep start), queue depth and
//! busy-worker gauges, and — for finished jobs — the job's progress
//! metric (simulated cycles) plus the derived metric-per-wall-second
//! rate, so throughput regressions show up directly in the stream.
//!
//! The stream is observability, not state: the resume ledger is the
//! source of truth, and event-write failures surface as errors only at
//! open time; per-event write failures are counted but do not abort a
//! multi-hour sweep.

use crate::json::Json;
use proteus_types::stats::Log2Histogram;
use proteus_types::{JobOutcome, SimError};
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Event stream format version.
pub const EVENTS_VERSION: u64 = 1;

/// Queue/worker occupancy attached to job events.
#[derive(Debug, Clone, Copy, Default)]
pub struct Gauges {
    /// Jobs not yet claimed by any worker.
    pub queue_depth: usize,
    /// Workers currently executing a job.
    pub busy_workers: usize,
}

/// Append-side handle for a telemetry event stream.
pub struct EventSink {
    path: PathBuf,
    writer: BufWriter<File>,
    start: Instant,
    fsync: bool,
    /// Events dropped because a write failed (reported at sweep end).
    pub dropped: u64,
    /// Per-job wall-time distribution (milliseconds), reported at sweep
    /// end so stragglers are visible without post-processing the stream.
    wall_ms: Log2Histogram,
}

impl EventSink {
    /// Opens `path` for appending, creating parents as needed. Every
    /// event is flushed to the OS; pass `fsync: true` via
    /// [`EventSink::open_with_fsync`] to additionally force it to
    /// stable storage per event.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::HarnessIo`] on any filesystem failure.
    pub fn open(path: &Path) -> Result<EventSink, SimError> {
        EventSink::open_with_fsync(path, false)
    }

    /// [`EventSink::open`] with a per-event durability choice: when
    /// `fsync` is true every emitted event is `fdatasync`ed, so even a
    /// machine crash (not just a killed process) preserves the full
    /// stream at the cost of one sync per event.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::HarnessIo`] on any filesystem failure.
    pub fn open_with_fsync(path: &Path, fsync: bool) -> Result<EventSink, SimError> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(|e| {
                    SimError::HarnessIo(format!(
                        "cannot create events directory {}: {e}",
                        parent.display()
                    ))
                })?;
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(path).map_err(|e| {
            SimError::HarnessIo(format!("cannot open events file {}: {e}", path.display()))
        })?;
        Ok(EventSink {
            path: path.to_path_buf(),
            writer: BufWriter::new(file),
            start: Instant::now(),
            fsync,
            dropped: 0,
            wall_ms: Log2Histogram::new(),
        })
    }

    /// The path this sink writes to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn emit(&mut self, event: &'static str, mut pairs: Vec<(&'static str, Json)>) {
        let mut all = vec![
            ("v", Json::U64(EVENTS_VERSION)),
            ("event", Json::str(event)),
            ("t", Json::F64(self.start.elapsed().as_secs_f64())),
        ];
        all.append(&mut pairs);
        let line = Json::obj(all).to_line();
        let ok = self
            .writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .and_then(|()| self.writer.flush())
            .and_then(|()| if self.fsync { self.writer.get_ref().sync_data() } else { Ok(()) })
            .is_ok();
        if !ok {
            self.dropped += 1;
        }
    }

    /// Records the start of a sweep.
    pub fn sweep_start(&mut self, total_jobs: usize, skipped: usize, workers: usize) {
        self.emit(
            "sweep-start",
            vec![
                ("total_jobs", Json::U64(total_jobs as u64)),
                ("resumed_jobs", Json::U64(skipped as u64)),
                ("workers", Json::U64(workers as u64)),
            ],
        );
    }

    /// Records a job being skipped because the resume ledger already
    /// holds a completed record for its spec hash.
    pub fn job_resumed(&mut self, name: &str, spec_hash: u64) {
        self.emit(
            "job-resumed",
            vec![("job", Json::str(name)), ("spec_hash", Json::str(format!("{spec_hash:016x}")))],
        );
    }

    /// Records a worker claiming a job.
    pub fn job_start(&mut self, name: &str, spec_hash: u64, worker: usize, g: Gauges) {
        self.emit(
            "job-start",
            vec![
                ("job", Json::str(name)),
                ("spec_hash", Json::str(format!("{spec_hash:016x}"))),
                ("worker", Json::U64(worker as u64)),
                ("queue_depth", Json::U64(g.queue_depth as u64)),
                ("busy_workers", Json::U64(g.busy_workers as u64)),
            ],
        );
    }

    /// Records an attempt failing with retries remaining.
    pub fn job_retry(&mut self, name: &str, attempt: u32, outcome: &JobOutcome) {
        self.emit(
            "job-retry",
            vec![
                ("job", Json::str(name)),
                ("attempt", Json::U64(u64::from(attempt))),
                ("outcome", Json::str(outcome.label())),
                ("message", Json::str(outcome.message().unwrap_or(""))),
            ],
        );
    }

    /// Records a job reaching a terminal outcome. `metric` is the job's
    /// progress measure (simulated cycles for experiment jobs); the
    /// sink derives `metric_per_s` from it and the attempt wall time.
    #[allow(clippy::too_many_arguments)]
    pub fn job_end(
        &mut self,
        name: &str,
        spec_hash: u64,
        outcome: &JobOutcome,
        attempts: u32,
        wall_seconds: f64,
        metric: u64,
        g: Gauges,
    ) {
        let rate = if wall_seconds > 0.0 { metric as f64 / wall_seconds } else { 0.0 };
        self.wall_ms.record((wall_seconds * 1000.0).max(0.0) as u64);
        let mut pairs = vec![
            ("job", Json::str(name)),
            ("spec_hash", Json::str(format!("{spec_hash:016x}"))),
            ("outcome", Json::str(outcome.label())),
        ];
        if let Some(msg) = outcome.message() {
            pairs.push(("message", Json::str(msg)));
        }
        pairs.extend([
            ("attempts", Json::U64(u64::from(attempts))),
            ("wall_seconds", Json::F64(wall_seconds)),
            ("metric", Json::U64(metric)),
            ("metric_per_s", Json::F64(rate)),
            ("queue_depth", Json::U64(g.queue_depth as u64)),
            ("busy_workers", Json::U64(g.busy_workers as u64)),
        ]);
        self.emit("job-end", pairs);
    }

    /// Records sweep completion with aggregate counters.
    #[allow(clippy::too_many_arguments)]
    pub fn sweep_end(
        &mut self,
        executed: usize,
        resumed: usize,
        completed: usize,
        failed: usize,
        crashed: usize,
        wall_seconds: f64,
        total_metric: u64,
    ) {
        let rate = if wall_seconds > 0.0 { total_metric as f64 / wall_seconds } else { 0.0 };
        let dropped = self.dropped;
        let wall_hist = std::mem::take(&mut self.wall_ms);
        self.emit(
            "sweep-end",
            vec![
                ("executed", Json::U64(executed as u64)),
                ("resumed", Json::U64(resumed as u64)),
                ("completed", Json::U64(completed as u64)),
                ("failed", Json::U64(failed as u64)),
                ("crashed", Json::U64(crashed as u64)),
                ("wall_seconds", Json::F64(wall_seconds)),
                ("metric", Json::U64(total_metric)),
                ("metric_per_s", Json::F64(rate)),
                ("dropped_events", Json::U64(dropped)),
                ("job_wall_ms_max", Json::U64(wall_hist.max())),
                ("job_wall_ms_hist", Json::str(wall_hist.render())),
            ],
        );
    }
}

/// Loads an event stream back, skipping anything a killed process may
/// have left behind: blank lines, torn (unparseable) lines, and records
/// from other format versions. Mirrors the resume ledger's tolerance —
/// telemetry damage is data loss we recover from, never an error.
///
/// # Errors
///
/// Returns [`SimError::HarnessIo`] only if the file itself cannot be
/// opened or read; a missing file yields an empty stream.
pub fn load_events(path: &Path) -> Result<Vec<Json>, SimError> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => {
            return Err(SimError::HarnessIo(format!("cannot read events {}: {e}", path.display())))
        }
    };
    Ok(text
        .lines()
        .filter_map(|line| {
            let trimmed = line.trim();
            if trimmed.is_empty() {
                return None;
            }
            let v = crate::json::parse(trimmed).ok()?;
            if v.get("v").and_then(Json::as_u64) != Some(EVENTS_VERSION) {
                return None;
            }
            v.get("event")?.as_str()?;
            Some(v)
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn events_are_valid_jsonl_in_lifecycle_order() {
        let mut path = std::env::temp_dir();
        path.push(format!("proteus-events-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let mut sink = EventSink::open(&path).unwrap();
            let g = Gauges { queue_depth: 2, busy_workers: 1 };
            sink.sweep_start(3, 1, 4);
            sink.job_resumed("a/b", 0x11);
            sink.job_start("c/d", 0x22, 0, g);
            sink.job_retry("c/d", 1, &JobOutcome::Crashed { panic: "boom".into() });
            sink.job_end("c/d", 0x22, &JobOutcome::Completed, 2, 0.5, 1000, g);
            sink.sweep_end(2, 1, 2, 0, 0, 1.0, 2000);
            assert_eq!(sink.dropped, 0);
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<Json> =
            text.lines().map(|l| json::parse(l).expect("each event parses")).collect();
        let kinds: Vec<&str> =
            lines.iter().map(|v| v.get("event").unwrap().as_str().unwrap()).collect();
        assert_eq!(
            kinds,
            ["sweep-start", "job-resumed", "job-start", "job-retry", "job-end", "sweep-end"]
        );
        let end = &lines[4];
        assert_eq!(end.get("metric").unwrap().as_u64(), Some(1000));
        assert_eq!(end.get("metric_per_s").unwrap().as_f64(), Some(2000.0));
        assert_eq!(end.get("attempts").unwrap().as_u64(), Some(2));
        let summary = &lines[5];
        assert_eq!(summary.get("metric_per_s").unwrap().as_f64(), Some(2000.0));
        // The 0.5 s job lands in the [256-511] ms bucket of the wall-time
        // histogram.
        assert_eq!(summary.get("job_wall_ms_max").unwrap().as_u64(), Some(500));
        let hist = summary.get("job_wall_ms_hist").unwrap().as_str().unwrap();
        assert!(hist.contains("[256-511]:1"), "{hist}");
        // Timestamps are monotonic.
        let ts: Vec<f64> = lines.iter().map(|v| v.get("t").unwrap().as_f64().unwrap()).collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "{ts:?}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn killed_writer_leaves_a_parseable_stream() {
        // Mirrors the ledger's truncated-tail test: each event is
        // flushed on emit, so a process killed mid-write can tear at
        // most the line it was writing — everything before it must
        // load back intact.
        let mut path = std::env::temp_dir();
        path.push(format!("proteus-events-torn-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let mut sink = EventSink::open_with_fsync(&path, true).unwrap();
            sink.sweep_start(2, 0, 1);
            sink.job_start("a/b", 0x1, 0, Gauges::default());
            sink.job_end("a/b", 0x1, &JobOutcome::Completed, 1, 0.1, 10, Gauges::default());
            assert_eq!(sink.dropped, 0);
        }
        {
            // Simulate the kill: raw junk and a torn, newline-less tail
            // appended after the flushed events.
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            writeln!(f, "garbage not json").unwrap();
            writeln!(f, "{}", r#"{"v":999,"event":"from-the-future"}"#).unwrap();
            write!(f, "{}", r#"{"v":1,"event":"job-sta"#).unwrap();
        }
        let events = load_events(&path).unwrap();
        let kinds: Vec<&str> =
            events.iter().map(|v| v.get("event").unwrap().as_str().unwrap()).collect();
        assert_eq!(kinds, ["sweep-start", "job-start", "job-end"]);
        assert!(load_events(Path::new("/nonexistent/x.jsonl")).unwrap().is_empty());
        std::fs::remove_file(&path).unwrap();
    }
}
