//! Human-readable formatting helpers for progress and summary lines.

/// Formats a rate with an SI suffix: `1234.0` → `"1.23k"`,
/// `2_500_000.0` → `"2.50M"`. Values below 1000 keep one decimal.
pub fn human_rate(rate: f64) -> String {
    if !rate.is_finite() || rate < 0.0 {
        return "0.0".to_string();
    }
    const STEPS: [(f64, &str); 3] = [(1e9, "G"), (1e6, "M"), (1e3, "k")];
    for (scale, suffix) in STEPS {
        if rate >= scale {
            return format!("{:.2}{suffix}", rate / scale);
        }
    }
    format!("{rate:.1}")
}

#[cfg(test)]
mod tests {
    use super::human_rate;

    #[test]
    fn rates_pick_si_suffixes() {
        assert_eq!(human_rate(0.0), "0.0");
        assert_eq!(human_rate(999.4), "999.4");
        assert_eq!(human_rate(1_234.0), "1.23k");
        assert_eq!(human_rate(2_500_000.0), "2.50M");
        assert_eq!(human_rate(7.5e9), "7.50G");
        assert_eq!(human_rate(f64::NAN), "0.0");
        assert_eq!(human_rate(-5.0), "0.0");
    }
}
