#![warn(missing_docs)]
//! Inter-core coherence for the statically-known sharing domain.
//!
//! The paper's headline workloads are share-nothing, so the baseline
//! cache hierarchy models no coherence at all. Contended workloads break
//! that invariant for a *statically known* address range — the shared
//! arena and the structure ticket locks of
//! `proteus_types::sharing` — and only there does coherence need to
//! exist. This crate supplies the protocol: a simplified M/S/I
//! ownership discipline implemented as snoop scans over the private
//! cache stacks, with the hierarchy (in `proteus-cache`) providing the
//! topology.
//!
//! # The protocol
//!
//! For lines inside the coherence domain:
//!
//! - **Load**: own L1 → own L2 → *remote dirty scan* → shared L3 →
//!   miss. A remote dirty hit is an **ownership transfer**: the owner's
//!   copy is cleaned in place, the dirty data moves into the shared L3,
//!   and the requester is served at [`CoherenceCtrl::transfer_latency`]
//!   (an L3 access plus a cross-core hop). The scan must run *before*
//!   the L3 probe — the L3 copy is stale while a private dirty copy
//!   exists.
//! - **Store**: a read-for-ownership — the coherent load above, then
//!   **invalidation** of every remote copy, then the word merges into
//!   the requester's L1 (the modified copy). Invariant: a dirty
//!   domain line has no other cached copy.
//! - **Peek** (non-mutating): same order with a read-only dirty scan.
//!
//! Everything outside the domain takes the pre-coherence path bit for
//! bit: the scans are gated on `in_coherence_domain`, no state is
//! added to any cache line, and single-owner workloads cannot tell the
//! difference (the zero-effect guardrail test pins this).
//!
//! Transfers and invalidations are synchronous — latency is charged to
//! the requesting core and no new wake-up source exists — so the
//! event-driven fast-forward engine stays byte-identical.

use proteus_core::pmem::LineData;
use proteus_types::addr::LineAddr;
use proteus_types::clock::Cycle;
use proteus_types::stats::CoherenceStats;
use proteus_types::CoreId;

/// Extra cycles a remote ownership transfer costs on top of an L3
/// access: the snoop round-trip between private caches across the
/// shared interconnect.
pub const REMOTE_HOP_CYCLES: u64 = 5;

/// One private cache level as the snoop scans see it.
///
/// `proteus-cache`'s `Cache` implements this; mock levels implement it
/// in this crate's tests.
pub trait SnoopLevel {
    /// Non-mutating presence check (no LRU or statistics effects).
    fn snoop_contains(&self, line: LineAddr) -> bool;
    /// Non-mutating read of a resident line.
    fn snoop_peek(&self, line: LineAddr) -> Option<LineData>;
    /// Whether the line is resident and dirty.
    fn snoop_dirty(&self, line: LineAddr) -> bool;
    /// Cleans a resident dirty line in place, returning its data.
    fn snoop_clean(&mut self, line: LineAddr) -> Option<LineData>;
    /// Removes the line entirely, returning `(data, was_dirty)`.
    fn snoop_invalidate(&mut self, line: LineAddr) -> Option<(LineData, bool)>;
}

/// Finds the core holding a dirty copy of `line` in its private stack.
///
/// `stacks` yields `(core_index, levels)` for every core to scan (the
/// caller excludes the requester); cores are visited in iteration order
/// and the first dirty owner wins — the protocol invariant (at most one
/// dirty copy of a domain line) makes the order observable only when
/// the invariant is broken, which the paranoid harness would catch as a
/// fingerprint divergence.
pub fn dirty_owner<'a, L, I, S>(stacks: I, line: LineAddr) -> Option<usize>
where
    L: SnoopLevel + 'a,
    S: IntoIterator<Item = &'a L>,
    I: Iterator<Item = (usize, S)>,
{
    for (core, levels) in stacks {
        if levels.into_iter().any(|l| l.snoop_dirty(line)) {
            return Some(core);
        }
    }
    None
}

/// A coherence action, recorded only while event capture is enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoherenceAction {
    /// A remote dirty copy moved to the requester via the shared L3.
    Transfer,
    /// A remote copy was removed by a read-for-ownership.
    Invalidate,
}

/// One captured coherence event; the simulator stamps the cycle when it
/// drains the buffer into the tracer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoherenceEvent {
    /// What happened.
    pub action: CoherenceAction,
    /// The line involved.
    pub line: LineAddr,
    /// The core that held the copy.
    pub from: CoreId,
    /// The requesting core.
    pub to: CoreId,
}

/// Protocol bookkeeping: statistics, the transfer latency model, and an
/// optional event buffer for the tracer.
///
/// Default-constructed with event capture off, the controller is pure
/// bookkeeping on paths only coherence-domain accesses reach — it costs
/// single-owner workloads nothing.
#[derive(Debug)]
pub struct CoherenceCtrl {
    stats: CoherenceStats,
    transfer_latency: Cycle,
    events: Option<Vec<CoherenceEvent>>,
}

impl CoherenceCtrl {
    /// Builds a controller; `l3_latency` is the shared-level access
    /// latency the transfer cost builds on.
    pub fn new(l3_latency: Cycle) -> Self {
        CoherenceCtrl {
            stats: CoherenceStats::default(),
            transfer_latency: l3_latency + REMOTE_HOP_CYCLES,
            events: None,
        }
    }

    /// Load-to-use latency of a remote ownership transfer.
    pub fn transfer_latency(&self) -> Cycle {
        self.transfer_latency
    }

    /// Enables event capture (disabled by default).
    pub fn enable_events(&mut self) {
        self.events = Some(Vec::new());
    }

    /// Takes the captured events, leaving capture enabled.
    pub fn drain_events(&mut self) -> Vec<CoherenceEvent> {
        match &mut self.events {
            Some(buf) => std::mem::take(buf),
            None => Vec::new(),
        }
    }

    /// Records an ownership transfer of `line` from `from` to `to`.
    pub fn note_transfer(&mut self, line: LineAddr, from: CoreId, to: CoreId) {
        self.stats.remote_transfers += 1;
        if let Some(buf) = &mut self.events {
            buf.push(CoherenceEvent { action: CoherenceAction::Transfer, line, from, to });
        }
    }

    /// Records the invalidation of `from`'s copy of `line` on behalf of
    /// writer `to`.
    pub fn note_invalidate(&mut self, line: LineAddr, from: CoreId, to: CoreId) {
        self.stats.invalidations += 1;
        if let Some(buf) = &mut self.events {
            buf.push(CoherenceEvent { action: CoherenceAction::Invalidate, line, from, to });
        }
    }

    /// Records a coherence-domain access that missed every cache and
    /// goes to memory.
    pub fn note_domain_miss(&mut self) {
        self.stats.coherence_misses += 1;
    }

    /// Accumulated statistics (the `lock_acquires` field stays zero
    /// here; cores count their own acquires and the simulator merges).
    pub fn stats(&self) -> &CoherenceStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct MockLevel {
        resident: Vec<(LineAddr, LineData, bool)>,
    }

    impl MockLevel {
        fn with(line: LineAddr, dirty: bool) -> Self {
            MockLevel { resident: vec![(line, [7; 8], dirty)] }
        }
    }

    impl SnoopLevel for MockLevel {
        fn snoop_contains(&self, line: LineAddr) -> bool {
            self.resident.iter().any(|(l, _, _)| *l == line)
        }
        fn snoop_peek(&self, line: LineAddr) -> Option<LineData> {
            self.resident.iter().find(|(l, _, _)| *l == line).map(|(_, d, _)| *d)
        }
        fn snoop_dirty(&self, line: LineAddr) -> bool {
            self.resident.iter().any(|(l, _, d)| *l == line && *d)
        }
        fn snoop_clean(&mut self, line: LineAddr) -> Option<LineData> {
            let e = self.resident.iter_mut().find(|(l, _, d)| *l == line && *d)?;
            e.2 = false;
            Some(e.1)
        }
        fn snoop_invalidate(&mut self, line: LineAddr) -> Option<(LineData, bool)> {
            let pos = self.resident.iter().position(|(l, _, _)| *l == line)?;
            let (_, d, dirty) = self.resident.swap_remove(pos);
            Some((d, dirty))
        }
    }

    fn line(i: u64) -> LineAddr {
        LineAddr::from_index(i)
    }

    #[test]
    fn dirty_owner_finds_first_dirty_core() {
        let stacks = [
            vec![MockLevel::default(), MockLevel::with(line(3), false)],
            vec![MockLevel::with(line(3), true), MockLevel::default()],
        ];
        let owner = dirty_owner(stacks.iter().enumerate().map(|(i, s)| (i, s.iter())), line(3));
        assert_eq!(owner, Some(1));
        assert_eq!(
            dirty_owner(stacks.iter().enumerate().map(|(i, s)| (i, s.iter())), line(9)),
            None
        );
    }

    #[test]
    fn clean_copies_are_not_owners() {
        let stacks = [vec![MockLevel::with(line(4), false)]];
        assert_eq!(
            dirty_owner(stacks.iter().enumerate().map(|(i, s)| (i, s.iter())), line(4)),
            None,
            "a clean copy can be served from the L3; no transfer needed"
        );
    }

    #[test]
    fn ctrl_counts_and_latency() {
        let mut ctrl = CoherenceCtrl::new(42);
        assert_eq!(ctrl.transfer_latency(), 42 + REMOTE_HOP_CYCLES);
        ctrl.note_transfer(line(1), CoreId::new(0), CoreId::new(1));
        ctrl.note_invalidate(line(1), CoreId::new(0), CoreId::new(1));
        ctrl.note_invalidate(line(2), CoreId::new(2), CoreId::new(1));
        ctrl.note_domain_miss();
        let s = ctrl.stats();
        assert_eq!(s.remote_transfers, 1);
        assert_eq!(s.invalidations, 2);
        assert_eq!(s.coherence_misses, 1);
        assert_eq!(s.lock_acquires, 0);
    }

    #[test]
    fn events_off_by_default_on_when_enabled() {
        let mut ctrl = CoherenceCtrl::new(10);
        ctrl.note_transfer(line(1), CoreId::new(0), CoreId::new(1));
        assert!(ctrl.drain_events().is_empty(), "capture starts disabled");
        ctrl.enable_events();
        ctrl.note_invalidate(line(2), CoreId::new(1), CoreId::new(0));
        let ev = ctrl.drain_events();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].action, CoherenceAction::Invalidate);
        assert_eq!(ev[0].line, line(2));
        assert!(ctrl.drain_events().is_empty(), "drain empties the buffer");
        ctrl.note_transfer(line(3), CoreId::new(0), CoreId::new(1));
        assert_eq!(ctrl.drain_events().len(), 1, "capture stays enabled after drain");
    }
}
