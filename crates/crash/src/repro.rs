//! Minimal crash repro artifacts: shrink, save, load, replay.
//!
//! When exploration finds a violation, the interesting object is not the
//! thousand-transaction workload it was found in but the smallest
//! workload and earliest crash point that still shows it. The shrinker
//! walks the workload size down (halving, then decrementing, first
//! `sim_ops` then `init_ops`) re-exploring at each step, and finally
//! takes the earliest violating event of an exhaustive pass over the
//! shrunk workload.
//!
//! The result is a [`CrashRepro`]: a fully self-contained JSON artifact
//! (workload shape, scheme, fault model, knobs, event index) that
//! `reproduce crashrepro --file <path>` replays deterministically —
//! regenerate the workload, run to the event, crash with the fault,
//! recover, judge.

use crate::explore::{explore, ExploreSpec, ViolationPoint};
use crate::fault::FaultSpec;
use proteus_harness::{json, Json};
use proteus_sim::persist::{
    bench_from_json, bench_to_json, params_from_json, params_to_json, scheme_from_label,
};
use proteus_types::SimError;
use proteus_workloads::WorkloadParams;

/// Artifact format version, bumped on any incompatible change.
pub const REPRO_VERSION: u64 = 1;

/// A replayable minimal crash repro.
#[derive(Debug, Clone, PartialEq)]
pub struct CrashRepro {
    /// The (shrunk) exploration spec.
    pub spec: ExploreSpec,
    /// Persist-event index of the violating crash.
    pub event: u64,
    /// Oracle diagnosis recorded when the repro was minimised.
    pub detail: String,
}

/// Outcome of replaying a repro.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayOutcome {
    /// Whether the violation reproduced.
    pub violated: bool,
    /// Fresh oracle diagnosis (or "consistent").
    pub detail: String,
}

impl CrashRepro {
    /// Replays the artifact from scratch: regenerate the workload, run
    /// to the recorded persist event, crash with the recorded fault,
    /// recover, judge.
    ///
    /// # Errors
    ///
    /// Returns simulator configuration errors; consistency results are
    /// reported in the [`ReplayOutcome`], never as errors.
    pub fn replay(&self) -> Result<ReplayOutcome, SimError> {
        use proteus_sim::System;
        use proteus_types::config::SystemConfig;

        let workload = self.spec.bench.generate(&self.spec.params);
        let oracle = crate::oracle::WorkloadOracle::new(&workload);
        let cfg = SystemConfig::skylake_like()
            .with_num_cores(self.spec.params.threads.max(1))
            .with_disable_persist_ordering(self.spec.broken_ordering);
        let mut m = System::new(&cfg, self.spec.scheme, &workload)?;
        if !m.run_until_persist_event(self.event) {
            return Ok(ReplayOutcome {
                violated: true,
                detail: format!("replay produced fewer than {} persist events", self.event),
            });
        }
        match m.crash_and_recover_with(&self.spec.fault.to_crash_faults()) {
            Ok((recovered, _report)) => match oracle.check(&recovered) {
                Err(detail) => Ok(ReplayOutcome { violated: true, detail }),
                Ok(()) => Ok(ReplayOutcome {
                    violated: false,
                    detail: format!("consistent at event {}", self.event),
                }),
            },
            Err(e) => Ok(ReplayOutcome { violated: true, detail: e.to_string() }),
        }
    }

    /// Serialises to the JSON artifact: a version header, the flattened
    /// exploration spec ([`explore_spec_to_json`]), and the violation
    /// coordinates.
    pub fn to_json(&self) -> Json {
        let Json::Obj(spec_pairs) = explore_spec_to_json(&self.spec) else {
            unreachable!("explore_spec_to_json always returns an object");
        };
        let mut pairs = vec![("version".to_string(), Json::U64(REPRO_VERSION))];
        pairs.extend(spec_pairs);
        pairs.push(("event".to_string(), Json::U64(self.event)));
        pairs.push(("detail".to_string(), Json::str(&self.detail)));
        Json::Obj(pairs)
    }

    /// Deserialises the JSON artifact; `None` on shape or version
    /// mismatch.
    pub fn from_json(v: &Json) -> Option<CrashRepro> {
        if v.get("version")?.as_u64()? != REPRO_VERSION {
            return None;
        }
        Some(CrashRepro {
            spec: explore_spec_from_json(v)?,
            event: v.get("event")?.as_u64()?,
            detail: v.get("detail")?.as_str()?.to_string(),
        })
    }

    /// Writes the artifact to `path` as a single JSON line.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::HarnessIo`] on filesystem failure.
    pub fn save(&self, path: &std::path::Path) -> Result<(), SimError> {
        std::fs::write(path, self.to_json().to_line() + "\n")
            .map_err(|e| SimError::HarnessIo(format!("writing {}: {e}", path.display())))
    }

    /// Loads an artifact written by [`CrashRepro::save`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::HarnessIo`] on filesystem or parse failure.
    pub fn load(path: &std::path::Path) -> Result<CrashRepro, SimError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| SimError::HarnessIo(format!("reading {}: {e}", path.display())))?;
        let value = json::parse(text.trim())
            .map_err(|e| SimError::HarnessIo(format!("{}: {e}", path.display())))?;
        CrashRepro::from_json(&value).ok_or_else(|| {
            SimError::HarnessIo(format!(
                "{}: not a version-{REPRO_VERSION} crash repro",
                path.display()
            ))
        })
    }
}

/// Shrinks a violating spec to a minimal repro. Returns `None` if the
/// spec does not actually violate (so callers cannot fabricate repro
/// artifacts from clean runs).
///
/// # Errors
///
/// Propagates simulator errors from the exploration passes.
pub fn shrink(spec: &ExploreSpec) -> Result<Option<CrashRepro>, SimError> {
    let Some(mut best) = first_violation(spec)? else {
        return Ok(None);
    };
    let mut current = spec.clone();

    // Shrink sim_ops, then init_ops: halve while the violation survives,
    // then decrement for the last factor of two.
    for field in [ShrinkField::SimOps, ShrinkField::InitOps] {
        loop {
            let value = field.get(&current.params);
            if value <= 1 {
                break;
            }
            let mut candidate = current.clone();
            field.set(&mut candidate.params, value / 2);
            match first_violation(&candidate)? {
                Some(v) => {
                    current = candidate;
                    best = v;
                }
                None => break,
            }
        }
        loop {
            let value = field.get(&current.params);
            if value <= 1 {
                break;
            }
            let mut candidate = current.clone();
            field.set(&mut candidate.params, value - 1);
            match first_violation(&candidate)? {
                Some(v) => {
                    current = candidate;
                    best = v;
                }
                None => break,
            }
        }
    }

    // Earliest violating event of an exhaustive pass over the shrunk
    // workload: the final repro never depends on sampling luck. (Bounded
    // so a workload that refused to shrink cannot explode the pass.)
    let exhaustive = ExploreSpec { max_points: 4096, ..current.clone() };
    let outcome = explore(&exhaustive)?;
    if let Some(v) = outcome.violations.first() {
        best = v.clone();
        current = exhaustive;
    }
    Ok(Some(CrashRepro { spec: current, event: best.event, detail: best.detail }))
}

fn first_violation(spec: &ExploreSpec) -> Result<Option<ViolationPoint>, SimError> {
    Ok(explore(spec)?.violations.into_iter().next())
}

#[derive(Clone, Copy)]
enum ShrinkField {
    SimOps,
    InitOps,
}

impl ShrinkField {
    fn get(self, p: &WorkloadParams) -> usize {
        match self {
            ShrinkField::SimOps => p.sim_ops,
            ShrinkField::InitOps => p.init_ops,
        }
    }

    fn set(self, p: &mut WorkloadParams, v: usize) {
        match self {
            ShrinkField::SimOps => p.sim_ops = v,
            ShrinkField::InitOps => p.init_ops = v,
        }
    }
}

/// Encodes an exploration spec as a flat JSON object — the crash-job
/// wire form for `proteus-service` and the body of [`CrashRepro`]
/// artifacts. Benchmark/params/scheme reuse the shared
/// `proteus_sim::persist` codec.
pub fn explore_spec_to_json(spec: &ExploreSpec) -> Json {
    Json::obj([
        ("bench", bench_to_json(&spec.bench)),
        ("params", params_to_json(&spec.params)),
        ("scheme", Json::str(spec.scheme.label())),
        ("fault", fault_to_json(spec.fault)),
        ("broken_ordering", Json::Bool(spec.broken_ordering)),
        ("max_points", Json::U64(spec.max_points as u64)),
    ])
}

/// Decodes an exploration spec; `None` on malformed input. Accepts any
/// object carrying the [`explore_spec_to_json`] fields, so it also
/// reads them out of the flattened [`CrashRepro`] artifact.
pub fn explore_spec_from_json(v: &Json) -> Option<ExploreSpec> {
    Some(ExploreSpec {
        bench: bench_from_json(v.get("bench")?)?,
        params: params_from_json(v.get("params")?)?,
        scheme: scheme_from_label(v.get("scheme")?.as_str()?)?,
        fault: fault_from_json(v.get("fault")?)?,
        broken_ordering: v.get("broken_ordering")?.as_bool()?,
        max_points: v.get("max_points")?.as_usize()?,
    })
}

/// Encodes a fault model selector.
pub fn fault_to_json(fault: FaultSpec) -> Json {
    match fault {
        FaultSpec::Clean => Json::obj([("kind", Json::str("clean"))]),
        FaultSpec::TornLine { mask } => {
            Json::obj([("kind", Json::str("torn")), ("mask", Json::U64(mask as u64))])
        }
        FaultSpec::DroppedInFlight => Json::obj([("kind", Json::str("dropped"))]),
        FaultSpec::PartialAdr { wpq_keep, lpq_keep } => Json::obj([
            ("kind", Json::str("partial_adr")),
            ("wpq_keep", Json::U64(wpq_keep as u64)),
            ("lpq_keep", Json::U64(lpq_keep as u64)),
        ]),
    }
}

/// Decodes a fault model selector; `None` on unknown kinds.
pub fn fault_from_json(v: &Json) -> Option<FaultSpec> {
    match v.get("kind")?.as_str()? {
        "clean" => Some(FaultSpec::Clean),
        "torn" => Some(FaultSpec::TornLine { mask: u8::try_from(v.get("mask")?.as_u64()?).ok()? }),
        "dropped" => Some(FaultSpec::DroppedInFlight),
        "partial_adr" => Some(FaultSpec::PartialAdr {
            wpq_keep: v.get("wpq_keep")?.as_usize()?,
            lpq_keep: v.get("lpq_keep")?.as_usize()?,
        }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_types::config::LoggingSchemeKind;
    use proteus_workloads::Benchmark;

    fn sample_repro() -> CrashRepro {
        CrashRepro {
            spec: ExploreSpec {
                bench: Benchmark::RbTree.into(),
                params: WorkloadParams { threads: 2, init_ops: 30, sim_ops: 4, seed: 99 },
                scheme: LoggingSchemeKind::Proteus,
                fault: FaultSpec::PartialAdr { wpq_keep: 1, lpq_keep: 0 },
                broken_ordering: true,
                max_points: 128,
            },
            event: 41,
            detail: "Thread(0) matches none of 5 boundary states".to_string(),
        }
    }

    #[test]
    fn json_round_trip_is_exact() {
        let repro = sample_repro();
        let line = repro.to_json().to_line();
        let parsed = json::parse(&line).unwrap();
        assert_eq!(CrashRepro::from_json(&parsed), Some(repro));
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let repro = sample_repro();
        let mut v = repro.to_json();
        if let Json::Obj(pairs) = &mut v {
            pairs[0].1 = Json::U64(REPRO_VERSION + 1);
        }
        assert_eq!(CrashRepro::from_json(&v), None);
    }

    #[test]
    fn save_load_round_trip() {
        let repro = sample_repro();
        let path =
            std::env::temp_dir().join(format!("proteus-crash-repro-{}.json", std::process::id()));
        repro.save(&path).unwrap();
        let loaded = CrashRepro::load(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(loaded, repro);
    }

    #[test]
    fn bench_and_fault_json_cover_all_variants() {
        for b in [
            Benchmark::Queue,
            Benchmark::HashMap,
            Benchmark::StringSwap,
            Benchmark::AvlTree,
            Benchmark::BTree,
            Benchmark::RbTree,
            Benchmark::LargeTx { elements: 2048 },
        ] {
            let sel = proteus_workgen::WorkloadSel::from(b);
            assert_eq!(bench_from_json(&bench_to_json(&sel)), Some(sel));
        }
        for f in [
            FaultSpec::Clean,
            FaultSpec::TornLine { mask: 0xAA },
            FaultSpec::DroppedInFlight,
            FaultSpec::PartialAdr { wpq_keep: 3, lpq_keep: 7 },
        ] {
            assert_eq!(fault_from_json(&fault_to_json(f)), Some(f));
        }
    }
}
