#![warn(missing_docs)]
//! Crash-point exploration for the Proteus NVM logging simulator.
//!
//! The rest of the workspace *runs* transactions; this crate asks the
//! only question that justifies the logging hardware in the first place:
//! **if power dies at an arbitrary durable-state transition, does
//! recovery always land on a transaction boundary?** It answers it
//! systematically instead of anecdotally:
//!
//! * [`oracle`] — the transaction-consistency oracles: per-thread
//!   functional snapshots at every commit for the share-nothing
//!   benchmarks, and per-structure commit-prefix matching (cross-thread,
//!   lock-handoff ordered) for contended workloads, dispatched by
//!   [`oracle::WorkloadOracle`] so every consumer (explorer, shrinker,
//!   replayer, proptests, example) shares one judgement.
//! * [`fault`] — crash fault models beyond the clean ADR drain: torn
//!   64-byte line writes, prefix-only battery drains, dropped in-flight
//!   requests.
//! * [`explore`] — the crash-point engine: crash points are persist-event
//!   indices (every durable acceptance, drain, clear, and marker stamp in
//!   the memory controller), explored exhaustively for small executions
//!   and via seeded stratified sampling for large ones.
//! * [`sweep`] — fan-out of exploration jobs through `proteus-harness`
//!   (worker pool, resumable ledger, telemetry).
//! * [`repro`] — shrinking of violations to a minimal workload + crash
//!   point, saved as a replayable JSON artifact.
//!
//! The checker validates itself: the test-only
//! `disable_persist_ordering` configuration knob breaks the core's
//! write-ahead gate (stores release before their log entry is durable),
//! and the integration tests require that exploration *catches* the
//! resulting torn states and shrinks them to a replayable repro.

pub mod explore;
pub mod fault;
pub mod oracle;
pub mod repro;
pub mod sweep;

pub use explore::{choose_points, explore, ExploreOutcome, ExploreSpec, ViolationPoint};
pub use fault::FaultSpec;
pub use oracle::{
    ConsistencyOracle, CrossThreadOracle, CrossThreadViolation, Violation, WorkloadOracle,
};
pub use repro::{
    explore_spec_from_json, explore_spec_to_json, fault_from_json, fault_to_json, shrink,
    CrashRepro, ReplayOutcome, REPRO_VERSION,
};
pub use sweep::{outcome_codec, sweep};
