//! Systematic crash-point exploration.
//!
//! One exploration job is a `(workload, scheme, fault)` triple. The
//! engine first runs the simulation to completion once to learn the total
//! persist-event count `E`, then picks crash points: **exhaustive**
//! (every event index) when `E` fits the budget, otherwise **stratified
//! sampling** — the index range is split into `max_points` equal strata
//! and one point is drawn per stratum by a deterministic PRNG seeded from
//! the spec hash, so every region of the execution is probed and the same
//! spec always explores the same points (which is what makes resume
//! ledgers and shrinking sound).
//!
//! Exploration itself is single-pass: one fresh simulation steps forward,
//! and each time the persist-event counter crosses the next chosen index
//! the crash image is captured (with the spec's fault model applied),
//! recovered, and judged by the [`ConsistencyOracle`]. Granularity is the
//! simulation step: if several persist events land in one cycle, their
//! crash images are identical, which is exactly why capturing at the
//! step boundary after the counter crossed the index loses nothing.

use crate::fault::FaultSpec;
use crate::oracle::WorkloadOracle;
use proteus_sim::System;
use proteus_types::config::{LoggingSchemeKind, SystemConfig};
use proteus_types::{stable_hash_value, FieldHasher, SimError, StableHash, StableHasher};
use proteus_workgen::WorkloadSel;
use proteus_workloads::WorkloadParams;

/// One exploration job: workload shape, scheme, fault model, budget.
#[derive(Debug, Clone, PartialEq)]
pub struct ExploreSpec {
    /// Workload to generate: a paper benchmark or a generated spec.
    pub bench: WorkloadSel,
    /// Workload generation parameters.
    pub params: WorkloadParams,
    /// Logging scheme under test.
    pub scheme: LoggingSchemeKind,
    /// Fault model applied at each crash point.
    pub fault: FaultSpec,
    /// Enables the `disable_persist_ordering` fault knob in the core —
    /// the deliberately broken scheme the checker must catch.
    pub broken_ordering: bool,
    /// Crash-point budget: exhaustive below it, stratified above it.
    pub max_points: usize,
}

impl ExploreSpec {
    /// A spec with the clean fault model and the given point budget.
    pub fn new(
        bench: impl Into<WorkloadSel>,
        params: WorkloadParams,
        scheme: LoggingSchemeKind,
        max_points: usize,
    ) -> Self {
        ExploreSpec {
            bench: bench.into(),
            params,
            scheme,
            fault: FaultSpec::Clean,
            broken_ordering: false,
            max_points,
        }
    }

    /// Human-readable job name (`crash/<bench>/<scheme>/<fault>`).
    pub fn name(&self) -> String {
        let broken = if self.broken_ordering { "/broken" } else { "" };
        format!(
            "crash/{}/{}/{}{broken}",
            self.bench.abbrev(),
            self.scheme.label(),
            self.fault.label()
        )
    }

    /// Stable structural hash: the resume key and sampling seed.
    pub fn spec_hash(&self) -> u64 {
        stable_hash_value(self)
    }
}

impl StableHash for ExploreSpec {
    fn stable_hash(&self, h: &mut StableHasher) {
        let mut f = FieldHasher::new("ExploreSpec");
        f.field("bench", &self.bench)
            .field("params", &self.params)
            .field("scheme", &self.scheme)
            .field("fault", &self.fault)
            .field("broken_ordering", &self.broken_ordering)
            .field("max_points", &self.max_points);
        h.write_u64(f.finish());
    }
}

/// One crash point whose recovered image failed the oracle (or whose
/// recovery itself failed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViolationPoint {
    /// Persist-event index of the crash.
    pub event: u64,
    /// What went wrong.
    pub detail: String,
}

/// Result of exploring one spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExploreOutcome {
    /// Persist events in the full execution.
    pub total_events: u64,
    /// Crash points actually explored.
    pub points_explored: usize,
    /// Points whose recovery violated transaction consistency, in
    /// ascending event order.
    pub violations: Vec<ViolationPoint>,
}

impl ExploreOutcome {
    /// Whether every explored point recovered consistently.
    pub fn is_consistent(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Explores every chosen crash point of `spec`.
///
/// # Errors
///
/// Returns configuration and runaway errors from the simulator.
/// Recovery failures ([`SimError::CorruptLog`]) at individual crash
/// points are *not* errors: they are recorded as violations, because a
/// log image recovery cannot even parse is the strongest possible
/// consistency failure.
pub fn explore(spec: &ExploreSpec) -> Result<ExploreOutcome, SimError> {
    let workload = spec.bench.generate(&spec.params);
    let oracle = WorkloadOracle::new(&workload);
    let cfg = SystemConfig::skylake_like()
        .with_num_cores(spec.params.threads.max(1))
        .with_disable_persist_ordering(spec.broken_ordering);

    // Pass 1: learn the persist-event count of the full execution. The
    // simulator is deterministic, so the replayed pass sees the same
    // timeline.
    let total_events = {
        let mut m = System::new(&cfg, spec.scheme, &workload)?;
        m.run()?;
        m.persist_seq()
    };
    let points = choose_points(total_events, spec.max_points, spec.spec_hash());

    // Pass 2: single forward sweep capturing each chosen point.
    let faults = spec.fault.to_crash_faults();
    let mut m = System::new(&cfg, spec.scheme, &workload)?;
    let mut violations = Vec::new();
    for &event in &points {
        if !m.run_until_persist_event(event) {
            // Deterministic replays cannot fall short; treat it as the
            // hardest violation rather than silently under-exploring.
            violations.push(ViolationPoint {
                event,
                detail: format!("replay produced fewer than {event} persist events"),
            });
            break;
        }
        match m.crash_and_recover_with(&faults) {
            Ok((recovered, _report)) => {
                if let Err(detail) = oracle.check(&recovered) {
                    violations.push(ViolationPoint { event, detail });
                }
            }
            Err(e) => violations.push(ViolationPoint { event, detail: e.to_string() }),
        }
    }
    Ok(ExploreOutcome { total_events, points_explored: points.len(), violations })
}

/// Picks the crash points: `1..=total` when it fits the budget, else one
/// seeded draw per stratum. Always ascending, never duplicated.
pub fn choose_points(total: u64, max_points: usize, seed: u64) -> Vec<u64> {
    if total == 0 || max_points == 0 {
        return Vec::new();
    }
    if total <= max_points as u64 {
        return (1..=total).collect();
    }
    let mut rng = XorShift::new(seed);
    let strata = max_points as u64;
    (0..strata)
        .map(|s| {
            let lo = 1 + s * total / strata;
            let hi = s.checked_add(1).map(|n| n * total / strata).unwrap_or(total).max(lo);
            lo + rng.next_u64() % (hi - lo + 1).max(1)
        })
        .map(|p| p.min(total))
        .collect()
}

/// Deterministic xorshift64* PRNG: no `rand` dependency, identical
/// streams on every platform, seeded from the spec hash so the sampled
/// points are part of the spec's identity.
#[derive(Debug, Clone)]
pub struct XorShift(u64);

impl XorShift {
    /// Seeds the generator (zero is remapped to a fixed odd constant).
    pub fn new(seed: u64) -> Self {
        XorShift(if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed })
    }

    /// Next pseudo-random value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_workloads::Benchmark;

    #[test]
    fn exhaustive_below_budget_stratified_above() {
        assert_eq!(choose_points(5, 10, 1), vec![1, 2, 3, 4, 5]);
        assert_eq!(choose_points(0, 10, 1), Vec::<u64>::new());
        assert_eq!(choose_points(5, 0, 1), Vec::<u64>::new());
        let sampled = choose_points(10_000, 32, 42);
        assert_eq!(sampled.len(), 32);
        assert!(sampled.windows(2).all(|w| w[0] < w[1]), "ascending strata");
        assert!(*sampled.first().unwrap() >= 1 && *sampled.last().unwrap() <= 10_000);
        // Deterministic: same seed, same points.
        assert_eq!(sampled, choose_points(10_000, 32, 42));
        assert_ne!(sampled, choose_points(10_000, 32, 43));
    }

    #[test]
    fn spec_hash_distinguishes_fault_and_knob() {
        let base = ExploreSpec::new(
            Benchmark::Queue,
            WorkloadParams { threads: 1, init_ops: 10, sim_ops: 2, seed: 1 },
            LoggingSchemeKind::Proteus,
            64,
        );
        let torn = ExploreSpec { fault: FaultSpec::TornLine { mask: 1 }, ..base.clone() };
        let broken = ExploreSpec { broken_ordering: true, ..base.clone() };
        assert_ne!(base.spec_hash(), torn.spec_hash());
        assert_ne!(base.spec_hash(), broken.spec_hash());
        assert!(base.name().contains("QE") && base.name().contains("clean"));
        assert!(broken.name().ends_with("/broken"));
    }

    #[test]
    fn small_queue_workload_explores_cleanly() {
        let spec = ExploreSpec::new(
            Benchmark::Queue,
            WorkloadParams { threads: 1, init_ops: 20, sim_ops: 3, seed: 5 },
            LoggingSchemeKind::Proteus,
            24,
        );
        let outcome = explore(&spec).unwrap();
        assert!(outcome.total_events > 0);
        assert!(outcome.points_explored > 0);
        assert!(outcome.points_explored <= 24);
        assert!(outcome.is_consistent(), "violations: {:?}", outcome.violations);
    }
}
