//! The transaction-consistency oracle.
//!
//! The durable promise every failure-safe scheme makes is: after a crash
//! and recovery, each thread's data is exactly the state *after some
//! prefix of its committed transactions* — never a torn mid-transaction
//! state. Because the workloads are share-nothing (each thread owns one
//! arena, [`proteus_workloads::thread_arena`]), the promise decomposes
//! per thread, so the oracle precomputes, for every thread, the functional
//! memory state after each transaction and accepts a recovered image iff
//! each thread's arena matches one of its snapshots.
//!
//! This oracle started life inside the crash-consistency proptest; it is
//! promoted here so the systematic explorer, the shrinker, the repro
//! replayer, the proptests, and the example all judge images with the one
//! implementation.

use proteus_core::pmem::WordImage;
use proteus_core::program::{Op, Program};
use proteus_types::{Addr, SimError, ThreadId};
use proteus_workloads::{thread_arena, GeneratedWorkload};
use std::fmt;

/// How many differing addresses a [`Violation`] keeps for diagnosis.
const SAMPLE_ADDRS: usize = 4;

/// Evidence that a recovered image matches no transaction boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The thread whose arena is torn.
    pub thread: ThreadId,
    /// Snapshot count the arena was compared against.
    pub candidates: usize,
    /// Fewest in-arena differing words against any snapshot.
    pub best_distance: usize,
    /// Sample of differing addresses against the closest snapshot.
    pub sample: Vec<Addr>,
}

impl Violation {
    /// Renders the violation as the typed simulator error.
    pub fn to_error(&self) -> SimError {
        SimError::ConsistencyViolation(self.to_string())
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} matches none of {} boundary states (closest differs in {} words, e.g. {:?})",
            self.thread, self.candidates, self.best_distance, self.sample
        )
    }
}

/// Per-thread transaction-boundary snapshots for one workload.
#[derive(Debug, Clone)]
pub struct ConsistencyOracle {
    threads: Vec<ThreadId>,
    snapshots: Vec<Vec<WordImage>>,
}

impl ConsistencyOracle {
    /// Precomputes the boundary states: for each thread, the initial
    /// image followed by the functional state after each of its
    /// transactions.
    pub fn new(workload: &GeneratedWorkload) -> Self {
        let mut threads = Vec::with_capacity(workload.programs.len());
        let mut snapshots = Vec::with_capacity(workload.programs.len());
        for program in &workload.programs {
            threads.push(program.thread);
            let mut states = vec![workload.initial_image.clone()];
            let mut img = workload.initial_image.clone();
            let mut tx = Program::new(program.thread);
            for op in &program.ops {
                tx.ops.push(op.clone());
                if matches!(op, Op::TxEnd) {
                    tx.apply_functionally(&mut img);
                    states.push(img.clone());
                    tx.ops.clear();
                }
            }
            snapshots.push(states);
        }
        ConsistencyOracle { threads, snapshots }
    }

    /// The threads the oracle covers, in program order.
    pub fn threads(&self) -> &[ThreadId] {
        &self.threads
    }

    /// The boundary states for thread index `t` (initial state first).
    pub fn boundary_states(&self, t: usize) -> &[WordImage] {
        &self.snapshots[t]
    }

    /// Checks a recovered image: every thread's arena must equal one of
    /// its boundary states. Addresses outside all arenas (log areas,
    /// flags, other metadata) are ignored — they may legitimately hold
    /// live log entries or stamped markers.
    ///
    /// # Errors
    ///
    /// Returns the first [`Violation`] in thread order.
    pub fn check(&self, recovered: &WordImage) -> Result<(), Violation> {
        for (t, states) in self.snapshots.iter().enumerate() {
            let thread = self.threads[t];
            let (lo, hi) = thread_arena(thread);
            let mut best_distance = usize::MAX;
            let mut sample = Vec::new();
            let consistent = states.iter().any(|snap| {
                let torn: Vec<Addr> =
                    recovered.diff(snap).into_iter().filter(|a| *a >= lo && *a < hi).collect();
                if torn.is_empty() {
                    return true;
                }
                if torn.len() < best_distance {
                    best_distance = torn.len();
                    sample = torn.into_iter().take(SAMPLE_ADDRS).collect();
                }
                false
            });
            if !consistent {
                return Err(Violation { thread, candidates: states.len(), best_distance, sample });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_workloads::{generate, Benchmark, WorkloadParams};

    fn workload() -> GeneratedWorkload {
        generate(
            Benchmark::Queue,
            &WorkloadParams { threads: 2, init_ops: 20, sim_ops: 4, seed: 7 },
        )
    }

    #[test]
    fn initial_image_is_always_consistent() {
        let w = workload();
        let oracle = ConsistencyOracle::new(&w);
        assert_eq!(oracle.threads().len(), 2);
        assert!(oracle.check(&w.initial_image).is_ok());
    }

    #[test]
    fn final_boundary_states_are_consistent() {
        let w = workload();
        let oracle = ConsistencyOracle::new(&w);
        // Compose each thread's final state into one image: committed
        // work by every thread is a valid recovery target.
        let mut img = w.initial_image.clone();
        for program in &w.programs {
            let mut all = Program::new(program.thread);
            all.ops = program.ops.clone();
            all.apply_functionally(&mut img);
        }
        assert!(oracle.check(&img).is_ok());
    }

    #[test]
    fn a_torn_arena_word_is_a_violation() {
        let w = workload();
        let oracle = ConsistencyOracle::new(&w);
        let mut img = w.initial_image.clone();
        let (lo, _) = thread_arena(w.programs[0].thread);
        let victim = lo;
        img.write_word(victim, img.read_word(victim) ^ 0xDEAD_BEEF);
        let v = oracle.check(&img).unwrap_err();
        assert_eq!(v.thread, w.programs[0].thread);
        assert!(v.best_distance >= 1);
        assert!(v.to_error().to_string().contains("crash-consistency violation"));
    }

    #[test]
    fn writes_outside_every_arena_are_ignored() {
        let w = workload();
        let oracle = ConsistencyOracle::new(&w);
        let mut img = w.initial_image.clone();
        img.write_word(Addr::new(8), 0x1234);
        assert!(oracle.check(&img).is_ok());
    }
}
