//! The transaction-consistency oracle.
//!
//! The durable promise every failure-safe scheme makes is: after a crash
//! and recovery, each thread's data is exactly the state *after some
//! prefix of its committed transactions* — never a torn mid-transaction
//! state. Because the workloads are share-nothing (each thread owns one
//! arena, [`proteus_workloads::thread_arena`]), the promise decomposes
//! per thread, so the oracle precomputes, for every thread, the functional
//! memory state after each transaction and accepts a recovered image iff
//! each thread's arena matches one of its snapshots.
//!
//! This oracle started life inside the crash-consistency proptest; it is
//! promoted here so the systematic explorer, the shrinker, the repro
//! replayer, the proptests, and the example all judge images with the one
//! implementation.

use proteus_core::pmem::WordImage;
use proteus_core::program::{Op, Program};
use proteus_types::sharing::{SHARED_ARENA_BASE, SHARED_ARENA_SIZE};
use proteus_types::{Addr, SimError, ThreadId};
use proteus_workloads::{thread_arena, GeneratedWorkload, SharingPlan};
use std::collections::BTreeSet;
use std::fmt;

/// How many differing addresses a [`Violation`] keeps for diagnosis.
const SAMPLE_ADDRS: usize = 4;

/// Evidence that a recovered image matches no transaction boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The thread whose arena is torn.
    pub thread: ThreadId,
    /// Snapshot count the arena was compared against.
    pub candidates: usize,
    /// Fewest in-arena differing words against any snapshot.
    pub best_distance: usize,
    /// Sample of differing addresses against the closest snapshot.
    pub sample: Vec<Addr>,
}

impl Violation {
    /// Renders the violation as the typed simulator error.
    pub fn to_error(&self) -> SimError {
        SimError::ConsistencyViolation(self.to_string())
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} matches none of {} boundary states (closest differs in {} words, e.g. {:?})",
            self.thread, self.candidates, self.best_distance, self.sample
        )
    }
}

/// Per-thread transaction-boundary snapshots for one workload.
#[derive(Debug, Clone)]
pub struct ConsistencyOracle {
    threads: Vec<ThreadId>,
    snapshots: Vec<Vec<WordImage>>,
}

impl ConsistencyOracle {
    /// Precomputes the boundary states: for each thread, the initial
    /// image followed by the functional state after each of its
    /// transactions.
    pub fn new(workload: &GeneratedWorkload) -> Self {
        let mut threads = Vec::with_capacity(workload.programs.len());
        let mut snapshots = Vec::with_capacity(workload.programs.len());
        for program in &workload.programs {
            threads.push(program.thread);
            let mut states = vec![workload.initial_image.clone()];
            let mut img = workload.initial_image.clone();
            let mut tx = Program::new(program.thread);
            for op in &program.ops {
                tx.ops.push(op.clone());
                if matches!(op, Op::TxEnd) {
                    tx.apply_functionally(&mut img);
                    states.push(img.clone());
                    tx.ops.clear();
                }
            }
            snapshots.push(states);
        }
        ConsistencyOracle { threads, snapshots }
    }

    /// The threads the oracle covers, in program order.
    pub fn threads(&self) -> &[ThreadId] {
        &self.threads
    }

    /// The boundary states for thread index `t` (initial state first).
    pub fn boundary_states(&self, t: usize) -> &[WordImage] {
        &self.snapshots[t]
    }

    /// Checks a recovered image: every thread's arena must equal one of
    /// its boundary states. Addresses outside all arenas (log areas,
    /// flags, other metadata) are ignored — they may legitimately hold
    /// live log entries or stamped markers.
    ///
    /// # Errors
    ///
    /// Returns the first [`Violation`] in thread order.
    pub fn check(&self, recovered: &WordImage) -> Result<(), Violation> {
        for (t, states) in self.snapshots.iter().enumerate() {
            let thread = self.threads[t];
            let (lo, hi) = thread_arena(thread);
            let mut best_distance = usize::MAX;
            let mut sample = Vec::new();
            let consistent = states.iter().any(|snap| {
                let torn: Vec<Addr> =
                    recovered.diff(snap).into_iter().filter(|a| *a >= lo && *a < hi).collect();
                if torn.is_empty() {
                    return true;
                }
                if torn.len() < best_distance {
                    best_distance = torn.len();
                    sample = torn.into_iter().take(SAMPLE_ADDRS).collect();
                }
                false
            });
            if !consistent {
                return Err(Violation { thread, candidates: states.len(), best_distance, sample });
            }
        }
        Ok(())
    }
}

/// Evidence that a recovered image of a *contended* workload matches no
/// cross-thread-consistent commit state (see [`CrossThreadOracle`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrossThreadViolation {
    /// Human-readable diagnosis.
    pub detail: String,
}

impl CrossThreadViolation {
    /// Renders the violation as the typed simulator error.
    pub fn to_error(&self) -> SimError {
        SimError::ConsistencyViolation(self.to_string())
    }
}

impl fmt::Display for CrossThreadViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.detail)
    }
}

/// Per-structure commit-prefix states for one contended workload.
///
/// The per-thread oracle's promise does not survive sharing: a thread's
/// committed writes land in structures other threads also mutate, so
/// "each arena equals a boundary state of its owner" is meaningless.
/// What a contended workload *does* promise is fixed at generation time:
/// the [`SharingPlan`] records one global schedule, and the ticket locks
/// force each structure's transactions to commit in exactly its ticket
/// order, with every failure-safe scheme making the lock handoff durable
/// (the release store retires only after the commit-point persist
/// protocol). A recovered image is therefore consistent iff it equals
/// the initial image plus, **per structure, the writes of a prefix of
/// that structure's groups in ticket order** — and the per-structure
/// prefixes must agree with per-thread program order (a thread's later
/// group cannot have committed without its earlier ones, because its
/// earlier `tx_end` retired first).
///
/// Structures never share nodes ([`proteus_workloads::mem::NodeAlloc`]
/// does not recycle), so the per-structure folds touch disjoint
/// addresses and each structure's matching prefix lengths can be found
/// independently; a final search over the (tiny) cartesian product
/// handles write-aliasing, where several prefix lengths reproduce the
/// same bytes.
#[derive(Debug, Clone)]
pub struct CrossThreadOracle {
    initial: WordImage,
    structures: Vec<StructurePrefixes>,
    /// Per thread: `(structure, per_structure_index)` of its groups, in
    /// program order — the closure relation the prefix choice must obey.
    thread_groups: Vec<(ThreadId, Vec<(usize, usize)>)>,
}

/// Prefix-fold states of one shared structure.
#[derive(Debug, Clone)]
struct StructurePrefixes {
    /// Sorted union of every address the structure's groups write.
    footprint: Vec<Addr>,
    /// `states[k][j]` = value of `footprint[j]` after the first `k`
    /// groups (ticket order); `states[0]` is the initial image.
    states: Vec<Vec<u64>>,
}

impl StructurePrefixes {
    /// Prefix lengths whose fold matches `recovered` over the
    /// footprint; on no match, the closest candidate's distance and a
    /// word sample for diagnosis.
    fn matching_prefixes(&self, recovered: &WordImage) -> Result<Vec<usize>, (usize, Vec<Addr>)> {
        let actual: Vec<u64> = self.footprint.iter().map(|a| recovered.read_word(*a)).collect();
        let matches: Vec<usize> =
            (0..self.states.len()).filter(|&k| self.states[k] == actual).collect();
        if !matches.is_empty() {
            return Ok(matches);
        }
        let mut best_distance = usize::MAX;
        let mut sample = Vec::new();
        for state in &self.states {
            let torn: Vec<Addr> = self
                .footprint
                .iter()
                .zip(state)
                .zip(&actual)
                .filter(|((_, want), got)| want != got)
                .map(|((a, _), _)| *a)
                .collect();
            if torn.len() < best_distance {
                best_distance = torn.len();
                sample = torn.into_iter().take(SAMPLE_ADDRS).collect();
            }
        }
        Err((best_distance, sample))
    }
}

impl CrossThreadOracle {
    /// Precomputes each structure's prefix-fold states and the
    /// per-thread group order from the workload's sharing plan.
    pub fn new(initial: &WordImage, plan: &SharingPlan) -> Self {
        let nstruct = plan.locks.len();
        let mut structures = Vec::with_capacity(nstruct);
        for s in 0..nstruct {
            let footprint: Vec<Addr> = plan
                .groups_of(s)
                .flat_map(|g| g.writes.iter().map(|(a, _)| *a))
                .collect::<BTreeSet<_>>()
                .into_iter()
                .collect();
            let mut current: Vec<u64> = footprint.iter().map(|a| initial.read_word(*a)).collect();
            let mut states = vec![current.clone()];
            for g in plan.groups_of(s) {
                for (a, v) in &g.writes {
                    let j = footprint.binary_search(a).expect("write address is in the footprint");
                    current[j] = *v;
                }
                states.push(current.clone());
            }
            structures.push(StructurePrefixes { footprint, states });
        }

        let mut thread_groups: Vec<(ThreadId, Vec<(usize, usize)>)> = Vec::new();
        let mut per_structure_index = vec![0usize; nstruct];
        for g in &plan.groups {
            let i = per_structure_index[g.structure];
            per_structure_index[g.structure] += 1;
            match thread_groups.iter_mut().find(|(t, _)| *t == g.thread) {
                Some((_, v)) => v.push((g.structure, i)),
                None => thread_groups.push((g.thread, vec![(g.structure, i)])),
            }
        }

        CrossThreadOracle { initial: initial.clone(), structures, thread_groups }
    }

    /// Checks a recovered image against the plan's commit semantics.
    ///
    /// # Errors
    ///
    /// Returns a [`CrossThreadViolation`] if any shared-arena word
    /// outside every footprint changed, any structure matches no commit
    /// prefix, or no per-structure prefix choice respects every
    /// thread's program order.
    pub fn check(&self, recovered: &WordImage) -> Result<(), CrossThreadViolation> {
        // Shared-arena words no group ever writes must still hold their
        // initial values — a diff there is a stray or torn write.
        let stray: Vec<Addr> = recovered
            .diff(&self.initial)
            .into_iter()
            .filter(|a| {
                let raw = a.raw();
                (SHARED_ARENA_BASE..SHARED_ARENA_BASE + SHARED_ARENA_SIZE).contains(&raw)
                    && !self.structures.iter().any(|s| s.footprint.binary_search(a).is_ok())
            })
            .take(SAMPLE_ADDRS)
            .collect();
        if !stray.is_empty() {
            return Err(CrossThreadViolation {
                detail: format!("shared-arena words outside every write set changed: {stray:?}"),
            });
        }

        let mut candidates: Vec<Vec<usize>> = Vec::with_capacity(self.structures.len());
        for (s, prefixes) in self.structures.iter().enumerate() {
            match prefixes.matching_prefixes(recovered) {
                Ok(ks) => candidates.push(ks),
                Err((best_distance, sample)) => {
                    return Err(CrossThreadViolation {
                        detail: format!(
                            "structure {s} matches no commit prefix of {} groups \
                             (closest differs in {best_distance} words, e.g. {sample:?})",
                            prefixes.states.len() - 1
                        ),
                    });
                }
            }
        }

        if self.search_consistent_choice(&mut vec![0; candidates.len()], &candidates, 0) {
            Ok(())
        } else {
            Err(CrossThreadViolation {
                detail: format!(
                    "per-structure commit prefixes {candidates:?} all violate some thread's \
                     program order (a later group committed without an earlier one)"
                ),
            })
        }
    }

    /// Depth-first search over the per-structure candidate prefixes for
    /// one choice that is prefix-closed under every thread's program
    /// order. The product is tiny in practice: aliasing beyond one or
    /// two adjacent prefix lengths needs a group whose writes are
    /// byte-identical to its predecessor's.
    fn search_consistent_choice(
        &self,
        choice: &mut Vec<usize>,
        candidates: &[Vec<usize>],
        s: usize,
    ) -> bool {
        if s == candidates.len() {
            return self.thread_groups.iter().all(|(_, groups)| {
                let mut excluded_seen = false;
                for &(structure, i) in groups {
                    let included = i < choice[structure];
                    if included && excluded_seen {
                        return false;
                    }
                    excluded_seen |= !included;
                }
                true
            });
        }
        candidates[s].iter().any(|&k| {
            choice[s] = k;
            self.search_consistent_choice(choice, candidates, s + 1)
        })
    }
}

/// The oracle a workload actually needs: per-thread boundary snapshots
/// for the share-nothing benchmarks, cross-thread commit prefixes when
/// the workload carries a [`SharingPlan`]. Every judgement site
/// (explorer, shrinker, replayer, proptests) dispatches through this so
/// contended and single-owner specs flow through identical machinery.
#[derive(Debug, Clone)]
pub enum WorkloadOracle {
    /// Share-nothing workload: per-thread transaction boundaries.
    PerThread(ConsistencyOracle),
    /// Contended workload: global commit-prefix semantics.
    CrossThread(CrossThreadOracle),
}

impl WorkloadOracle {
    /// Builds the oracle matching the workload's sharing shape.
    pub fn new(workload: &GeneratedWorkload) -> Self {
        match &workload.sharing {
            Some(plan) => {
                WorkloadOracle::CrossThread(CrossThreadOracle::new(&workload.initial_image, plan))
            }
            None => WorkloadOracle::PerThread(ConsistencyOracle::new(workload)),
        }
    }

    /// Checks a recovered image; the error is the violation rendered
    /// exactly as the underlying oracle displays it.
    ///
    /// # Errors
    ///
    /// Returns the violation's display string.
    pub fn check(&self, recovered: &WordImage) -> Result<(), String> {
        match self {
            WorkloadOracle::PerThread(o) => o.check(recovered).map_err(|v| v.to_string()),
            WorkloadOracle::CrossThread(o) => o.check(recovered).map_err(|v| v.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_workloads::{generate, Benchmark, WorkloadParams};

    fn workload() -> GeneratedWorkload {
        generate(
            Benchmark::Queue,
            &WorkloadParams { threads: 2, init_ops: 20, sim_ops: 4, seed: 7 },
        )
    }

    #[test]
    fn initial_image_is_always_consistent() {
        let w = workload();
        let oracle = ConsistencyOracle::new(&w);
        assert_eq!(oracle.threads().len(), 2);
        assert!(oracle.check(&w.initial_image).is_ok());
    }

    #[test]
    fn final_boundary_states_are_consistent() {
        let w = workload();
        let oracle = ConsistencyOracle::new(&w);
        // Compose each thread's final state into one image: committed
        // work by every thread is a valid recovery target.
        let mut img = w.initial_image.clone();
        for program in &w.programs {
            let mut all = Program::new(program.thread);
            all.ops = program.ops.clone();
            all.apply_functionally(&mut img);
        }
        assert!(oracle.check(&img).is_ok());
    }

    #[test]
    fn a_torn_arena_word_is_a_violation() {
        let w = workload();
        let oracle = ConsistencyOracle::new(&w);
        let mut img = w.initial_image.clone();
        let (lo, _) = thread_arena(w.programs[0].thread);
        let victim = lo;
        img.write_word(victim, img.read_word(victim) ^ 0xDEAD_BEEF);
        let v = oracle.check(&img).unwrap_err();
        assert_eq!(v.thread, w.programs[0].thread);
        assert!(v.best_distance >= 1);
        assert!(v.to_error().to_string().contains("crash-consistency violation"));
    }

    #[test]
    fn writes_outside_every_arena_are_ignored() {
        let w = workload();
        let oracle = ConsistencyOracle::new(&w);
        let mut img = w.initial_image.clone();
        img.write_word(Addr::new(8), 0x1234);
        assert!(oracle.check(&img).is_ok());
    }

    mod cross_thread {
        use super::*;
        use proteus_types::sharing::struct_lock_addr;
        use proteus_workloads::{
            generate_contended, ContendedKind, ContendedSpec, LockGroup, SharingPlan,
        };

        fn contended() -> GeneratedWorkload {
            generate_contended(
                &ContendedSpec { kind: ContendedKind::MpmcQueue, early_release: false },
                &WorkloadParams { threads: 3, init_ops: 32, sim_ops: 12, seed: 11 },
            )
        }

        fn fold(initial: &WordImage, groups: &[&LockGroup]) -> WordImage {
            let mut img = initial.clone();
            for g in groups {
                for (a, v) in &g.writes {
                    img.write_word(*a, *v);
                }
            }
            img
        }

        #[test]
        fn every_global_schedule_prefix_is_consistent() {
            let w = contended();
            let plan = w.sharing.as_ref().unwrap();
            let oracle = CrossThreadOracle::new(&w.initial_image, plan);
            // Prefixes of the *global* schedule induce per-structure
            // ticket prefixes and are trivially thread-closed.
            for n in 0..=plan.groups.len() {
                let prefix: Vec<&LockGroup> = plan.groups.iter().take(n).collect();
                let img = fold(&w.initial_image, &prefix);
                assert!(oracle.check(&img).is_ok(), "global prefix of {n} groups");
            }
        }

        #[test]
        fn dispatch_follows_the_sharing_plan() {
            let w = contended();
            let oracle = WorkloadOracle::new(&w);
            assert!(matches!(oracle, WorkloadOracle::CrossThread(_)));
            assert!(oracle.check(&w.initial_image).is_ok());
            let single = workload();
            assert!(matches!(WorkloadOracle::new(&single), WorkloadOracle::PerThread(_)));
        }

        #[test]
        fn a_committed_group_missing_its_predecessor_is_a_violation() {
            // The early-release shape: some group's writes are durable
            // while a lower-ticket group of the same structure is not.
            let w = contended();
            let plan = w.sharing.as_ref().unwrap();
            let oracle = CrossThreadOracle::new(&w.initial_image, plan);
            let groups: Vec<&LockGroup> = plan.groups_of(0).collect();
            // Find a skippable pair: group k writes a word no later
            // group rewrites, and group k+1 writes something.
            let (skip, keep) = (0..groups.len() - 1)
                .find_map(|k| {
                    let shadowed = |a: &Addr| {
                        groups[k + 1..].iter().any(|g| g.writes.iter().any(|(b, _)| b == a))
                    };
                    let exposed = groups[k].writes.iter().any(|(a, _)| !shadowed(a));
                    (exposed && !groups[k + 1].writes.is_empty()).then_some((k, k + 1))
                })
                .expect("queue schedule has a non-shadowed group followed by a writer");
            let chosen: Vec<&LockGroup> =
                groups[..skip].iter().chain(&groups[keep..=keep]).copied().collect();
            let img = fold(&w.initial_image, &chosen);
            let v = oracle.check(&img).unwrap_err();
            assert!(v.detail.contains("matches no commit prefix"), "{}", v.detail);
            assert!(v.to_error().to_string().contains("crash-consistency violation"));
        }

        #[test]
        fn a_torn_unwritten_arena_word_is_a_violation() {
            let w = contended();
            let plan = w.sharing.as_ref().unwrap();
            let oracle = CrossThreadOracle::new(&w.initial_image, plan);
            let mut img = w.initial_image.clone();
            // The arena's last word is far beyond any allocated node.
            let victim = Addr::new(SHARED_ARENA_BASE + SHARED_ARENA_SIZE - 8);
            img.write_word(victim, 0xBAD);
            let v = oracle.check(&img).unwrap_err();
            assert!(v.detail.contains("outside every write set"), "{}", v.detail);
        }

        #[test]
        fn prefix_choice_must_respect_thread_program_order() {
            // Hand-built two-structure plan: thread 0 commits A (s0)
            // then B (s1); thread 1 commits C (s0). An image holding
            // B's write but not A's is per-structure prefix-valid
            // (k0 = 0, k1 = 1) yet impossible — thread 0 committed B
            // only after A.
            let x = Addr::new(SHARED_ARENA_BASE);
            let y = Addr::new(SHARED_ARENA_BASE + 64);
            let z = Addr::new(SHARED_ARENA_BASE + 128);
            let t0 = ThreadId::new(0);
            let t1 = ThreadId::new(1);
            let plan = SharingPlan {
                locks: vec![struct_lock_addr(0), struct_lock_addr(1)],
                aux_locks: Vec::new(),
                groups: vec![
                    LockGroup { thread: t0, structure: 0, ticket: 0, writes: vec![(x, 1)] },
                    LockGroup { thread: t0, structure: 1, ticket: 0, writes: vec![(y, 1)] },
                    LockGroup { thread: t1, structure: 0, ticket: 1, writes: vec![(z, 1)] },
                ],
                early_release: false,
            };
            let initial = WordImage::new();
            let oracle = CrossThreadOracle::new(&initial, &plan);

            let image = |words: &[(Addr, u64)]| {
                let mut img = initial.clone();
                for (a, v) in words {
                    img.write_word(*a, *v);
                }
                img
            };
            assert!(oracle.check(&initial).is_ok());
            assert!(oracle.check(&image(&[(x, 1)])).is_ok());
            assert!(oracle.check(&image(&[(x, 1), (y, 1)])).is_ok());
            assert!(oracle.check(&image(&[(x, 1), (y, 1), (z, 1)])).is_ok());
            // z without x: not a ticket prefix of structure 0.
            let v = oracle.check(&image(&[(z, 1)])).unwrap_err();
            assert!(v.detail.contains("matches no commit prefix"), "{}", v.detail);
            // y without x: prefix-valid per structure, thread-order
            // impossible.
            let v = oracle.check(&image(&[(y, 1)])).unwrap_err();
            assert!(v.detail.contains("program order"), "{}", v.detail);
        }
    }
}
