//! Parallel crash sweeps through the experiment harness.
//!
//! Each [`ExploreSpec`] becomes one harness job named
//! `crash/<bench>/<scheme>/<fault>`, keyed by its stable spec hash, so
//! sweeps inherit everything `proteus-harness` provides: a worker pool
//! with panic isolation, a resumable JSON Lines ledger (re-running an
//! interrupted sweep skips completed explorations and restores their
//! outcomes), and the structured telemetry stream.

use crate::explore::{explore, ExploreOutcome, ExploreSpec, ViolationPoint};
use proteus_harness::{Harness, JobSpec, Json, PayloadCodec, SweepOptions, SweepReport};
use proteus_types::SimError;

/// Runs every spec through the harness worker pool.
///
/// # Errors
///
/// Only harness infrastructure failures ([`SimError::HarnessIo`]) are
/// errors; per-job simulator errors surface as failed jobs in the
/// report, and consistency violations are *data* in each job's
/// [`ExploreOutcome`] payload.
pub fn sweep(
    specs: &[ExploreSpec],
    opts: &SweepOptions,
) -> Result<SweepReport<ExploreOutcome>, SimError> {
    let jobs: Vec<JobSpec> = specs.iter().map(|s| JobSpec::new(s.name(), s.spec_hash())).collect();
    Harness::<ExploreOutcome>::new()
        .with_codec(outcome_codec())
        .with_metric(|o| o.points_explored as u64)
        .run(&jobs, opts, |i| explore(&specs[i]).map_err(|e| e.to_string()))
}

/// Ledger codec for [`ExploreOutcome`] payloads.
pub fn outcome_codec() -> PayloadCodec<ExploreOutcome> {
    PayloadCodec { encode: encode_outcome, decode: decode_outcome }
}

fn encode_outcome(o: &ExploreOutcome) -> Json {
    Json::obj([
        ("total_events", Json::U64(o.total_events)),
        ("points_explored", Json::U64(o.points_explored as u64)),
        (
            "violations",
            Json::Arr(
                o.violations
                    .iter()
                    .map(|v| {
                        Json::obj([("event", Json::U64(v.event)), ("detail", Json::str(&v.detail))])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn decode_outcome(v: &Json) -> Option<ExploreOutcome> {
    Some(ExploreOutcome {
        total_events: v.get("total_events")?.as_u64()?,
        points_explored: v.get("points_explored")?.as_usize()?,
        violations: v
            .get("violations")?
            .as_arr()?
            .iter()
            .map(|p| {
                Some(ViolationPoint {
                    event: p.get("event")?.as_u64()?,
                    detail: p.get("detail")?.as_str()?.to_string(),
                })
            })
            .collect::<Option<Vec<_>>>()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_codec_round_trips() {
        let outcome = ExploreOutcome {
            total_events: 512,
            points_explored: 64,
            violations: vec![ViolationPoint { event: 17, detail: "torn".to_string() }],
        };
        let json = encode_outcome(&outcome);
        assert_eq!(decode_outcome(&json), Some(outcome));
        assert_eq!(decode_outcome(&Json::Null), None);
    }
}
