//! Fault models layered on the crash point.
//!
//! A crash point says *when* power is lost; a [`FaultSpec`] says *how*.
//! Each variant maps onto the controller-level [`CrashFaults`] knobs and
//! states whether the scheme is still expected to recover consistently:
//!
//! * [`FaultSpec::Clean`] — the ADR contract holds exactly. Consistency
//!   expected from every failure-safe scheme.
//! * [`FaultSpec::TornLine`] — in-service NVMM line writes land torn
//!   (only the masked words). The controller keeps in-service entries
//!   queue-resident until bank-write completion, so a correct ADR drain
//!   overwrites the torn line: consistency is *still* expected, and this
//!   fault is a regression tripwire for an ack-early controller bug.
//! * [`FaultSpec::DroppedInFlight`] — requests submitted to but not yet
//!   accepted by the controller vanish. Acceptance *is* the durability
//!   acknowledgement, so this is exactly the clean model; the variant
//!   exists to pin that contract in sweeps and repro artifacts.
//! * [`FaultSpec::PartialAdr`] — the dying battery drains only a prefix
//!   of each queue. This exceeds the guarantee the schemes were built on,
//!   so violations are *expected detections*, proving the checker can see
//!   real torn states (they are excluded from the "zero violations"
//!   accounting of clean sweeps).

use proteus_mem::CrashFaults;
use proteus_types::{FieldHasher, StableHash, StableHasher};
use std::fmt;

/// How the dying machine deviates from a clean ADR drain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSpec {
    /// Full ADR drain; the acknowledged-durable contract holds.
    Clean,
    /// In-service line writes land torn: bit i of `mask` ⇒ word i of the
    /// 64-byte line reached the array before the queues were drained.
    TornLine {
        /// Word-survival mask for in-service writes.
        mask: u8,
    },
    /// Unaccepted (hence unacknowledged) requests are dropped. Identical
    /// to [`FaultSpec::Clean`] by construction — see the module docs.
    DroppedInFlight,
    /// Only a prefix of each persistency-domain queue survives.
    PartialAdr {
        /// WPQ entries drained before the battery died.
        wpq_keep: usize,
        /// LPQ entries drained before the battery died.
        lpq_keep: usize,
    },
}

impl FaultSpec {
    /// The controller-level fault knobs for this model.
    pub fn to_crash_faults(self) -> CrashFaults {
        match self {
            FaultSpec::Clean | FaultSpec::DroppedInFlight => CrashFaults::clean(),
            FaultSpec::TornLine { mask } => {
                CrashFaults { torn_word_mask: Some(mask), ..CrashFaults::clean() }
            }
            FaultSpec::PartialAdr { wpq_keep, lpq_keep } => CrashFaults {
                wpq_survivors: Some(wpq_keep),
                lpq_survivors: Some(lpq_keep),
                ..CrashFaults::clean()
            },
        }
    }

    /// Whether a failure-safe scheme is still expected to recover to a
    /// transaction boundary under this fault.
    pub fn expects_consistency(self) -> bool {
        !matches!(self, FaultSpec::PartialAdr { .. })
    }

    /// Short job-name label (`clean`, `torn:0f`, `dropped`, `adr:2+1`).
    pub fn label(self) -> String {
        match self {
            FaultSpec::Clean => "clean".to_string(),
            FaultSpec::TornLine { mask } => format!("torn:{mask:02x}"),
            FaultSpec::DroppedInFlight => "dropped".to_string(),
            FaultSpec::PartialAdr { wpq_keep, lpq_keep } => format!("adr:{wpq_keep}+{lpq_keep}"),
        }
    }
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

impl StableHash for FaultSpec {
    fn stable_hash(&self, h: &mut StableHasher) {
        let mut f = FieldHasher::new("FaultSpec");
        f.field("kind", &self.label());
        h.write_u64(f.finish());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_and_dropped_share_the_clean_controller_model() {
        assert!(FaultSpec::Clean.to_crash_faults().is_clean());
        assert!(FaultSpec::DroppedInFlight.to_crash_faults().is_clean());
        assert!(FaultSpec::Clean.expects_consistency());
        assert!(FaultSpec::DroppedInFlight.expects_consistency());
    }

    #[test]
    fn torn_expects_consistency_but_partial_adr_does_not() {
        let torn = FaultSpec::TornLine { mask: 0x0F };
        assert_eq!(torn.to_crash_faults().torn_word_mask, Some(0x0F));
        assert!(torn.expects_consistency());
        let partial = FaultSpec::PartialAdr { wpq_keep: 2, lpq_keep: 0 };
        assert_eq!(partial.to_crash_faults().wpq_survivors, Some(2));
        assert_eq!(partial.to_crash_faults().lpq_survivors, Some(0));
        assert!(!partial.expects_consistency());
    }

    #[test]
    fn labels_distinguish_every_variant() {
        let labels = [
            FaultSpec::Clean.label(),
            FaultSpec::TornLine { mask: 0xF0 }.label(),
            FaultSpec::DroppedInFlight.label(),
            FaultSpec::PartialAdr { wpq_keep: 1, lpq_keep: 2 }.label(),
        ];
        let unique: std::collections::HashSet<_> = labels.iter().collect();
        assert_eq!(unique.len(), labels.len());
    }
}
