//! Property-based tests of the frame codec: arbitrary JSON documents
//! must survive a write/read round trip byte-for-byte, and arbitrary
//! byte mutilations of a valid frame stream must be rejected cleanly
//! (an error or clean EOF — never a panic, never a wrong document).
//!
//! Only runs online: the offline stub of proptest is resolution-only,
//! and `tools/offline-check.sh` skips this suite.

use proptest::prelude::*;
use proteus_harness::{json, Json};
use proteus_service::{read_frame, write_frame, FrameError, FrameReader, MAX_FRAME_BYTES};
use std::io::Read;

/// Yields a scripted byte stream in pieces, returning a `WouldBlock`
/// timeout at every chunk boundary — the shape of a timeout-polled
/// socket stalling mid-frame.
struct StallingReader {
    bytes: Vec<u8>,
    cuts: Vec<usize>,
    pos: usize,
    stall_pending: bool,
}

impl Read for StallingReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.stall_pending {
            self.stall_pending = false;
            return Err(std::io::Error::from(std::io::ErrorKind::WouldBlock));
        }
        if self.pos >= self.bytes.len() {
            return Ok(0);
        }
        let limit = self
            .cuts
            .iter()
            .copied()
            .find(|&c| c > self.pos)
            .unwrap_or(self.bytes.len())
            .min(self.pos + buf.len());
        let n = limit - self.pos;
        buf[..n].copy_from_slice(&self.bytes[self.pos..limit]);
        self.pos = limit;
        self.stall_pending = self.cuts.contains(&self.pos) || self.pos == self.bytes.len();
        Ok(n)
    }
}

/// A small recursive JSON strategy: scalars at the leaves, arrays and
/// objects above, strings drawn from a charset that exercises escapes.
fn json_strategy() -> impl Strategy<Value = Json> {
    let leaf = prop_oneof![
        Just(Json::Null),
        any::<bool>().prop_map(Json::Bool),
        any::<u64>().prop_map(Json::U64),
        any::<i64>().prop_filter("negative lane", |v| *v < 0).prop_map(Json::I64),
        "[ -~]{0,24}".prop_map(Json::str),
        "[\\x00-\\x1f\"\\\\]{0,8}".prop_map(Json::str),
    ];
    leaf.prop_recursive(3, 24, 6, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..6).prop_map(Json::Arr),
            prop::collection::vec(("[a-z_]{1,8}", inner), 0..6)
                .prop_map(|pairs| { Json::Obj(pairs.into_iter().collect()) }),
        ]
    })
}

proptest! {
    #[test]
    fn frames_round_trip_byte_identically(doc in json_strategy()) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &doc).unwrap();
        let mut cursor = &buf[..];
        let back = read_frame(&mut cursor).unwrap().expect("one frame");
        prop_assert_eq!(back.to_line(), doc.to_line());
        prop_assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF after the frame");
    }

    #[test]
    fn multi_frame_streams_preserve_order(docs in prop::collection::vec(json_strategy(), 1..8)) {
        let mut buf = Vec::new();
        for d in &docs {
            write_frame(&mut buf, d).unwrap();
        }
        let mut cursor = &buf[..];
        for d in &docs {
            let back = read_frame(&mut cursor).unwrap().expect("frame present");
            prop_assert_eq!(back.to_line(), d.to_line());
        }
        prop_assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn truncated_frames_are_rejected_not_misread(doc in json_strategy(), cut_frac in 0.0f64..1.0) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &doc).unwrap();
        let cut = ((buf.len() as f64) * cut_frac) as usize;
        // Anything short of the full frame is either a clean EOF (cut
        // at 0) or a truncation error — never a parsed document.
        if cut < buf.len() {
            let mut cursor = &buf[..cut];
            match read_frame(&mut cursor) {
                Ok(None) => prop_assert_eq!(cut, 0, "only an empty stream is a clean EOF"),
                Ok(Some(_)) => prop_assert!(false, "misread a truncated frame as complete"),
                Err(FrameError::Truncated) => {}
                Err(e) => prop_assert!(false, "unexpected error class: {e}"),
            }
        }
    }

    #[test]
    fn resumable_reader_survives_stalls_at_arbitrary_boundaries(
        docs in prop::collection::vec(json_strategy(), 1..5),
        cut_fracs in prop::collection::vec(0.0f64..1.0, 0..8),
    ) {
        let mut bytes = Vec::new();
        for d in &docs {
            write_frame(&mut bytes, d).unwrap();
        }
        let mut cuts: Vec<usize> = cut_fracs
            .iter()
            .map(|f| ((bytes.len() as f64) * f) as usize)
            .filter(|&c| c > 0 && c < bytes.len())
            .collect();
        cuts.sort_unstable();
        cuts.dedup();
        let mut r = StallingReader { bytes, cuts, pos: 0, stall_pending: false };
        let mut reader = FrameReader::new();
        let mut back = Vec::new();
        loop {
            match reader.read(&mut r) {
                Ok(Some(v)) => back.push(v),
                Ok(None) => break,
                Err(e) if e.is_timeout() => {}
                Err(e) => prop_assert!(false, "stall desynced the stream: {e}"),
            }
        }
        prop_assert_eq!(back.len(), docs.len());
        for (b, d) in back.iter().zip(&docs) {
            prop_assert_eq!(b.to_line(), d.to_line());
        }
    }

    #[test]
    fn corrupt_length_prefixes_never_panic(prefix in prop::array::uniform4(any::<u8>()),
                                           body in prop::collection::vec(any::<u8>(), 0..64)) {
        let mut buf = prefix.to_vec();
        buf.extend_from_slice(&body);
        let mut cursor = &buf[..];
        // Whatever the bytes, the reader must return: a frame (if the
        // prefix happens to describe valid JSON), an error, or EOF —
        // and oversized claims must be refused before allocation.
        let declared = u32::from_be_bytes(prefix) as usize;
        match read_frame(&mut cursor) {
            Ok(_) => {}
            Err(FrameError::Oversized(n)) => {
                prop_assert_eq!(n, declared);
                prop_assert!(n > MAX_FRAME_BYTES);
            }
            Err(_) => {}
        }
    }
}
