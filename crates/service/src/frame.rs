//! Length-prefixed JSON frame codec — the entire wire format.
//!
//! Every message between coordinator and worker is one frame: a 4-byte
//! big-endian length followed by that many bytes of UTF-8 JSON (one
//! [`Json`] value, no trailing newline). The length prefix makes
//! framing unambiguous over TCP's byte stream; the 32 MiB cap bounds
//! memory per connection and rejects garbage prefixes (a peer speaking
//! HTTP at the worker port reads as an oversized frame, not an
//! allocation bomb).
//!
//! [`read_frame`] distinguishes the three ways a stream can disappoint:
//! a clean EOF **between** frames is `Ok(None)` (the peer closed — for
//! a worker connection that is the crash-detection signal), an EOF
//! **inside** a frame is [`FrameError::Truncated`], and bytes that are
//! not valid JSON are [`FrameError::Malformed`].
//!
//! Connections polled with a read **timeout** must use [`FrameReader`],
//! which keeps partial progress across timeouts: a stall mid-frame
//! (slow network, large payload) surfaces as a retriable timeout and
//! the next call resumes exactly where the stream left off. The
//! stateless [`read_frame`] discards partial progress on timeout and
//! is only sound on blocking streams and in-memory buffers.

use proteus_harness::{json, Json};
use std::io::{Read, Write};

/// Maximum frame body size. Large enough for any sweep submission or
/// result payload this workspace produces; small enough that a corrupt
/// length prefix cannot balloon a connection's memory.
pub const MAX_FRAME_BYTES: usize = 32 * 1024 * 1024;

/// Why a frame could not be read or written.
#[derive(Debug)]
pub enum FrameError {
    /// Underlying transport failure (including read timeouts).
    Io(std::io::Error),
    /// The stream ended inside a frame — the peer died mid-write.
    Truncated,
    /// Declared length exceeds [`MAX_FRAME_BYTES`].
    Oversized(usize),
    /// Frame bytes are not one valid JSON value.
    Malformed(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame io: {e}"),
            FrameError::Truncated => write!(f, "frame truncated mid-body"),
            FrameError::Oversized(n) => {
                write!(f, "frame of {n} bytes exceeds cap of {MAX_FRAME_BYTES}")
            }
            FrameError::Malformed(e) => write!(f, "frame is not valid JSON: {e}"),
        }
    }
}

impl FrameError {
    /// Whether this error is a read timeout (the peer is merely quiet,
    /// not gone) — callers poll with timeouts to stay interruptible.
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            FrameError::Io(e) if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            )
        )
    }
}

/// Writes one frame and flushes it.
///
/// # Errors
///
/// [`FrameError::Oversized`] if the encoded value exceeds the cap,
/// [`FrameError::Io`] on transport failure.
pub fn write_frame<W: Write>(w: &mut W, value: &Json) -> Result<(), FrameError> {
    let body = value.to_line().into_bytes();
    if body.len() > MAX_FRAME_BYTES {
        return Err(FrameError::Oversized(body.len()));
    }
    let len = (body.len() as u32).to_be_bytes();
    w.write_all(&len)
        .and_then(|()| w.write_all(&body))
        .and_then(|()| w.flush())
        .map_err(FrameError::Io)
}

/// Reads one frame from a blocking stream or in-memory buffer.
/// `Ok(None)` is a clean EOF between frames.
///
/// A timeout mid-frame **discards** the bytes already consumed — on a
/// stream with a read timeout, use a per-connection [`FrameReader`]
/// instead so a stall can be retried without desyncing the stream.
///
/// # Errors
///
/// See [`FrameError`]; timeouts surface as `Io` with
/// [`FrameError::is_timeout`] true.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Json>, FrameError> {
    FrameReader::new().read(r)
}

/// Resumable frame reader for timeout-polled connections.
///
/// Holds the partial length prefix and partial body across calls: when
/// a read times out mid-frame, the error is retriable
/// ([`FrameError::is_timeout`]) and the next [`FrameReader::read`]
/// call resumes at the exact byte the stream stalled on. Without this,
/// a >timeout network stall inside a frame would desync the stream —
/// the retried read would misparse body bytes as a fresh length
/// prefix.
#[derive(Debug, Default)]
pub struct FrameReader {
    len_buf: [u8; 4],
    filled: usize,
    body: Vec<u8>,
    got: usize,
    in_body: bool,
}

impl FrameReader {
    /// A reader with no partial frame buffered.
    pub fn new() -> FrameReader {
        FrameReader::default()
    }

    /// Whether a partial frame is buffered (a previous read stalled
    /// mid-frame and should be resumed).
    pub fn mid_frame(&self) -> bool {
        self.filled > 0 || self.in_body
    }

    /// Reads (or resumes reading) one frame. `Ok(None)` is a clean EOF
    /// **between** frames; an EOF mid-frame is
    /// [`FrameError::Truncated`].
    ///
    /// # Errors
    ///
    /// See [`FrameError`]. On a timeout (`Io` with
    /// [`FrameError::is_timeout`] true) the partial frame stays
    /// buffered and the call can simply be retried; every other error
    /// leaves the stream unsynchronized and the connection should be
    /// dropped.
    pub fn read<R: Read>(&mut self, r: &mut R) -> Result<Option<Json>, FrameError> {
        while !self.in_body {
            match r.read(&mut self.len_buf[self.filled..]) {
                Ok(0) if self.filled == 0 => return Ok(None),
                Ok(0) => return Err(FrameError::Truncated),
                Ok(n) => {
                    self.filled += n;
                    if self.filled == 4 {
                        let len = u32::from_be_bytes(self.len_buf) as usize;
                        if len > MAX_FRAME_BYTES {
                            return Err(FrameError::Oversized(len));
                        }
                        self.body = vec![0u8; len];
                        self.got = 0;
                        self.in_body = true;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(FrameError::Io(e)),
            }
        }
        while self.got < self.body.len() {
            match r.read(&mut self.body[self.got..]) {
                Ok(0) => return Err(FrameError::Truncated),
                Ok(n) => self.got += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(FrameError::Io(e)),
            }
        }
        let body = std::mem::take(&mut self.body);
        self.filled = 0;
        self.got = 0;
        self.in_body = false;
        let text = std::str::from_utf8(&body)
            .map_err(|e| FrameError::Malformed(format!("invalid utf-8: {e}")))?;
        json::parse(text).map(Some).map_err(FrameError::Malformed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Json) -> Json {
        let mut buf = Vec::new();
        write_frame(&mut buf, v).unwrap();
        read_frame(&mut buf.as_slice()).unwrap().unwrap()
    }

    #[test]
    fn frames_round_trip() {
        for v in [
            Json::Null,
            Json::U64(u64::MAX),
            Json::str("héllo \"quoted\" \n"),
            Json::obj([
                ("a", Json::Arr(vec![Json::U64(1), Json::Bool(false)])),
                ("b", Json::F64(0.5)),
            ]),
        ] {
            assert_eq!(roundtrip(&v).to_line(), v.to_line());
        }
    }

    #[test]
    fn multiple_frames_then_clean_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Json::U64(1)).unwrap();
        write_frame(&mut buf, &Json::U64(2)).unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_frame(&mut r).unwrap().unwrap().as_u64(), Some(1));
        assert_eq!(read_frame(&mut r).unwrap().unwrap().as_u64(), Some(2));
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF between frames");
    }

    #[test]
    fn truncated_frames_are_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Json::str("a somewhat long payload")).unwrap();
        // Cut inside the body.
        let cut = &buf[..buf.len() - 3];
        assert!(matches!(read_frame(&mut &cut[..]), Err(FrameError::Truncated)));
        // Cut inside the length prefix itself.
        let cut = &buf[..2];
        assert!(matches!(read_frame(&mut &cut[..]), Err(FrameError::Truncated)));
    }

    #[test]
    fn oversized_frames_are_rejected_without_allocating() {
        // An HTTP peer that connected to the wrong port: "GET " reads
        // as a 1.2 GB length prefix.
        let bytes = b"GET /metrics HTTP/1.1\r\n";
        match read_frame(&mut &bytes[..]) {
            Err(FrameError::Oversized(n)) => assert!(n > MAX_FRAME_BYTES),
            other => panic!("expected Oversized, got {other:?}"),
        }
        let mut buf = Vec::new();
        let huge = Json::str("x".repeat(MAX_FRAME_BYTES + 1));
        assert!(matches!(write_frame(&mut buf, &huge), Err(FrameError::Oversized(_))));
        assert!(buf.is_empty(), "nothing written for rejected frames");
    }

    /// A reader that yields scripted chunks, interleaving a timeout
    /// error before every chunk — the shape of a timeout-polled socket
    /// stalling mid-frame.
    struct StallingReader {
        chunks: Vec<Vec<u8>>,
        next: usize,
        stall_pending: bool,
    }

    impl StallingReader {
        fn new(bytes: &[u8], split_at: &[usize]) -> StallingReader {
            let mut chunks = Vec::new();
            let mut prev = 0;
            for &s in split_at {
                chunks.push(bytes[prev..s].to_vec());
                prev = s;
            }
            chunks.push(bytes[prev..].to_vec());
            StallingReader { chunks, next: 0, stall_pending: false }
        }
    }

    impl Read for StallingReader {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.stall_pending {
                self.stall_pending = false;
                return Err(std::io::Error::from(std::io::ErrorKind::WouldBlock));
            }
            let Some(chunk) = self.chunks.get_mut(self.next) else {
                return Ok(0);
            };
            let n = chunk.len().min(buf.len());
            buf[..n].copy_from_slice(&chunk[..n]);
            chunk.drain(..n);
            if chunk.is_empty() {
                self.next += 1;
                self.stall_pending = true;
            }
            Ok(n)
        }
    }

    #[test]
    fn frame_reader_resumes_after_a_timeout_at_every_split_point() {
        let mut bytes = Vec::new();
        let first = Json::obj([("seq", Json::U64(1)), ("body", Json::str("payload one"))]);
        let second = Json::obj([("seq", Json::U64(2))]);
        write_frame(&mut bytes, &first).unwrap();
        let first_len = bytes.len();
        write_frame(&mut bytes, &second).unwrap();
        // Stall once at every possible byte boundary of the first
        // frame: mid-length-prefix, at the prefix/body seam, mid-body.
        for split in 1..first_len {
            let mut r = StallingReader::new(&bytes, &[split]);
            let mut reader = FrameReader::new();
            let mut frames = Vec::new();
            loop {
                match reader.read(&mut r) {
                    Ok(Some(v)) => frames.push(v),
                    Ok(None) => break,
                    Err(e) if e.is_timeout() => {
                        assert!(
                            reader.mid_frame() || !frames.is_empty(),
                            "split {split}: timeout with no progress buffered"
                        );
                    }
                    Err(e) => panic!("split {split}: unexpected error {e}"),
                }
            }
            assert_eq!(frames.len(), 2, "split {split}");
            assert_eq!(frames[0].to_line(), first.to_line(), "split {split}");
            assert_eq!(frames[1].to_line(), second.to_line(), "split {split}");
        }
    }

    #[test]
    fn stateless_read_frame_surfaces_timeouts_without_consuming_frames() {
        // The stateless helper still reports the timeout; FrameReader
        // is what makes retrying sound.
        let mut r = StallingReader::new(&[0, 0], &[1]);
        let err = read_frame(&mut r).unwrap_err();
        assert!(err.is_timeout());
    }

    #[test]
    fn malformed_bodies_are_rejected() {
        for body in [&b"not json"[..], &b"{\"a\":"[..], &[0xFF, 0xFE][..]] {
            let mut buf = (body.len() as u32).to_be_bytes().to_vec();
            buf.extend_from_slice(body);
            assert!(
                matches!(read_frame(&mut buf.as_slice()), Err(FrameError::Malformed(_))),
                "{body:?}"
            );
        }
    }
}
