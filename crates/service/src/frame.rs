//! Length-prefixed JSON frame codec — the entire wire format.
//!
//! Every message between coordinator and worker is one frame: a 4-byte
//! big-endian length followed by that many bytes of UTF-8 JSON (one
//! [`Json`] value, no trailing newline). The length prefix makes
//! framing unambiguous over TCP's byte stream; the 32 MiB cap bounds
//! memory per connection and rejects garbage prefixes (a peer speaking
//! HTTP at the worker port reads as an oversized frame, not an
//! allocation bomb).
//!
//! [`read_frame`] distinguishes the three ways a stream can disappoint:
//! a clean EOF **between** frames is `Ok(None)` (the peer closed — for
//! a worker connection that is the crash-detection signal), an EOF
//! **inside** a frame is [`FrameError::Truncated`], and bytes that are
//! not valid JSON are [`FrameError::Malformed`].

use proteus_harness::{json, Json};
use std::io::{Read, Write};

/// Maximum frame body size. Large enough for any sweep submission or
/// result payload this workspace produces; small enough that a corrupt
/// length prefix cannot balloon a connection's memory.
pub const MAX_FRAME_BYTES: usize = 32 * 1024 * 1024;

/// Why a frame could not be read or written.
#[derive(Debug)]
pub enum FrameError {
    /// Underlying transport failure (including read timeouts).
    Io(std::io::Error),
    /// The stream ended inside a frame — the peer died mid-write.
    Truncated,
    /// Declared length exceeds [`MAX_FRAME_BYTES`].
    Oversized(usize),
    /// Frame bytes are not one valid JSON value.
    Malformed(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame io: {e}"),
            FrameError::Truncated => write!(f, "frame truncated mid-body"),
            FrameError::Oversized(n) => {
                write!(f, "frame of {n} bytes exceeds cap of {MAX_FRAME_BYTES}")
            }
            FrameError::Malformed(e) => write!(f, "frame is not valid JSON: {e}"),
        }
    }
}

impl FrameError {
    /// Whether this error is a read timeout (the peer is merely quiet,
    /// not gone) — callers poll with timeouts to stay interruptible.
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            FrameError::Io(e) if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            )
        )
    }
}

/// Writes one frame and flushes it.
///
/// # Errors
///
/// [`FrameError::Oversized`] if the encoded value exceeds the cap,
/// [`FrameError::Io`] on transport failure.
pub fn write_frame<W: Write>(w: &mut W, value: &Json) -> Result<(), FrameError> {
    let body = value.to_line().into_bytes();
    if body.len() > MAX_FRAME_BYTES {
        return Err(FrameError::Oversized(body.len()));
    }
    let len = (body.len() as u32).to_be_bytes();
    w.write_all(&len)
        .and_then(|()| w.write_all(&body))
        .and_then(|()| w.flush())
        .map_err(FrameError::Io)
}

/// Reads one frame. `Ok(None)` is a clean EOF between frames.
///
/// # Errors
///
/// See [`FrameError`]; timeouts surface as `Io` with
/// [`FrameError::is_timeout`] true.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Json>, FrameError> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => return Err(FrameError::Truncated),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(FrameError::Oversized(len));
    }
    let mut body = vec![0u8; len];
    let mut got = 0;
    while got < len {
        match r.read(&mut body[got..]) {
            Ok(0) => return Err(FrameError::Truncated),
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let text = std::str::from_utf8(&body)
        .map_err(|e| FrameError::Malformed(format!("invalid utf-8: {e}")))?;
    json::parse(text).map(Some).map_err(FrameError::Malformed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Json) -> Json {
        let mut buf = Vec::new();
        write_frame(&mut buf, v).unwrap();
        read_frame(&mut buf.as_slice()).unwrap().unwrap()
    }

    #[test]
    fn frames_round_trip() {
        for v in [
            Json::Null,
            Json::U64(u64::MAX),
            Json::str("héllo \"quoted\" \n"),
            Json::obj([
                ("a", Json::Arr(vec![Json::U64(1), Json::Bool(false)])),
                ("b", Json::F64(0.5)),
            ]),
        ] {
            assert_eq!(roundtrip(&v).to_line(), v.to_line());
        }
    }

    #[test]
    fn multiple_frames_then_clean_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Json::U64(1)).unwrap();
        write_frame(&mut buf, &Json::U64(2)).unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_frame(&mut r).unwrap().unwrap().as_u64(), Some(1));
        assert_eq!(read_frame(&mut r).unwrap().unwrap().as_u64(), Some(2));
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF between frames");
    }

    #[test]
    fn truncated_frames_are_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Json::str("a somewhat long payload")).unwrap();
        // Cut inside the body.
        let cut = &buf[..buf.len() - 3];
        assert!(matches!(read_frame(&mut &cut[..]), Err(FrameError::Truncated)));
        // Cut inside the length prefix itself.
        let cut = &buf[..2];
        assert!(matches!(read_frame(&mut &cut[..]), Err(FrameError::Truncated)));
    }

    #[test]
    fn oversized_frames_are_rejected_without_allocating() {
        // An HTTP peer that connected to the wrong port: "GET " reads
        // as a 1.2 GB length prefix.
        let bytes = b"GET /metrics HTTP/1.1\r\n";
        match read_frame(&mut &bytes[..]) {
            Err(FrameError::Oversized(n)) => assert!(n > MAX_FRAME_BYTES),
            other => panic!("expected Oversized, got {other:?}"),
        }
        let mut buf = Vec::new();
        let huge = Json::str("x".repeat(MAX_FRAME_BYTES + 1));
        assert!(matches!(write_frame(&mut buf, &huge), Err(FrameError::Oversized(_))));
        assert!(buf.is_empty(), "nothing written for rejected frames");
    }

    #[test]
    fn malformed_bodies_are_rejected() {
        for body in [&b"not json"[..], &b"{\"a\":"[..], &[0xFF, 0xFE][..]] {
            let mut buf = (body.len() as u32).to_be_bytes().to_vec();
            buf.extend_from_slice(body);
            assert!(
                matches!(read_frame(&mut buf.as_slice()), Err(FrameError::Malformed(_))),
                "{body:?}"
            );
        }
    }
}
