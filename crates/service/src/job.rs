//! The job envelope: what a sweep submission actually carries.
//!
//! A [`ServiceJob`] is either a cycle-accurate experiment
//! ([`ExperimentSpec`]) or a crash-point exploration ([`ExploreSpec`])
//! — the two long-running job families the workspace already runs
//! through `proteus-harness`. The envelope reuses their existing spec
//! hashes as the distributed identity (dedup key, lease key, ledger
//! key) and their existing payload codecs for results, so a job
//! executed remotely writes byte-identical ledger payloads to the same
//! job executed by a local `Harness` sweep.

use proteus_crash::{explore, explore_spec_from_json, explore_spec_to_json, ExploreSpec};
use proteus_harness::Json;
use proteus_sim::persist::{spec_from_json, spec_to_json};
use proteus_sim::runner::{experiment_codec, run_one, ExperimentSpec};
use proteus_types::JobOutcome;

/// One distributable unit of work.
// The spec variants are large by nature (a full SystemConfig rides in
// each), but jobs are created once per submission and never stored in
// bulk collections on a hot path, so indirection would buy nothing.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceJob {
    /// A full simulator run producing an `ExperimentResult`.
    Experiment(ExperimentSpec),
    /// A crash-point exploration producing an `ExploreOutcome`.
    Crash(ExploreSpec),
}

impl ServiceJob {
    /// The stable spec hash — dedup/lease/ledger identity. Experiment
    /// and crash hashes live in different `FieldHasher` domains, so the
    /// two families can never collide on the same queue.
    pub fn spec_hash(&self) -> u64 {
        match self {
            ServiceJob::Experiment(s) => s.spec_hash(),
            ServiceJob::Crash(s) => s.spec_hash(),
        }
    }

    /// Human-readable job name, matching what local sweeps emit.
    pub fn name(&self) -> String {
        match self {
            ServiceJob::Experiment(s) => s.display_name(),
            ServiceJob::Crash(s) => s.name(),
        }
    }

    /// Wire/ledger encoding: a kind tag plus the shared spec codec.
    pub fn to_json(&self) -> Json {
        match self {
            ServiceJob::Experiment(s) => {
                Json::obj([("kind", Json::str("experiment")), ("spec", spec_to_json(s))])
            }
            ServiceJob::Crash(s) => {
                Json::obj([("kind", Json::str("crash")), ("spec", explore_spec_to_json(s))])
            }
        }
    }

    /// Decodes a job envelope; `None` on unknown kinds or malformed
    /// specs.
    pub fn from_json(v: &Json) -> Option<ServiceJob> {
        match v.get("kind")?.as_str()? {
            "experiment" => Some(ServiceJob::Experiment(spec_from_json(v.get("spec")?)?)),
            "crash" => Some(ServiceJob::Crash(explore_spec_from_json(v.get("spec")?)?)),
            _ => None,
        }
    }

    /// Executes the job in-process and encodes the payload with the
    /// family's ledger codec. Panics propagate to the caller (workers
    /// wrap this in `catch_unwind`, exactly as the local scheduler
    /// does); clean simulator errors come back as `Err`.
    ///
    /// # Errors
    ///
    /// Returns the rendered simulator error for deterministic failures
    /// (bad configs and the like), which are never retried.
    pub fn execute(&self) -> Result<Json, String> {
        match self {
            ServiceJob::Experiment(spec) => {
                let result = run_one(spec).map_err(|e| e.to_string())?;
                Ok((experiment_codec().encode)(&result))
            }
            ServiceJob::Crash(spec) => {
                let outcome = explore(spec).map_err(|e| e.to_string())?;
                Ok((proteus_crash::outcome_codec().encode)(&outcome))
            }
        }
    }

    /// Decodes a ledger payload for this job's family, used to check
    /// that a remote result is readable before accepting it.
    pub fn payload_is_decodable(&self, payload: &Json) -> bool {
        match self {
            ServiceJob::Experiment(_) => (experiment_codec().decode)(payload).is_some(),
            ServiceJob::Crash(_) => (proteus_crash::outcome_codec().decode)(payload).is_some(),
        }
    }
}

/// A terminal job result as carried on the wire and stored in the
/// coordinator's ledger — the same fields as a harness
/// `LedgerRecord`, because it becomes one.
#[derive(Debug, Clone)]
pub struct WireResult {
    /// Job identity.
    pub spec_hash: u64,
    /// Job display name.
    pub name: String,
    /// Terminal outcome.
    pub outcome: JobOutcome,
    /// Encoded payload (`Json::Null` unless completed).
    pub payload: Json,
    /// Attempts the executing worker consumed.
    pub attempts: u32,
    /// Wall seconds the executing worker spent.
    pub wall_seconds: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_crash::FaultSpec;
    use proteus_types::config::{EngineConfig, LoggingSchemeKind, SystemConfig};
    use proteus_workloads::{Benchmark, WorkloadParams};

    fn tiny_experiment(seed: u64) -> ServiceJob {
        ServiceJob::Experiment(ExperimentSpec {
            config: SystemConfig::skylake_like().with_num_cores(1),
            scheme: LoggingSchemeKind::Proteus,
            bench: Benchmark::Queue.into(),
            params: WorkloadParams { threads: 1, init_ops: 8, sim_ops: 4, seed },
            engine: EngineConfig::default(),
        })
    }

    fn tiny_crash() -> ServiceJob {
        ServiceJob::Crash(ExploreSpec {
            bench: Benchmark::Queue.into(),
            params: WorkloadParams { threads: 1, init_ops: 8, sim_ops: 4, seed: 3 },
            scheme: LoggingSchemeKind::Proteus,
            fault: FaultSpec::Clean,
            broken_ordering: false,
            max_points: 4,
        })
    }

    #[test]
    fn envelopes_round_trip_and_keep_identity() {
        for job in [tiny_experiment(1), tiny_crash()] {
            let line = job.to_json().to_line();
            let parsed = proteus_harness::json::parse(&line).unwrap();
            let back = ServiceJob::from_json(&parsed).unwrap();
            assert_eq!(back, job);
            assert_eq!(back.spec_hash(), job.spec_hash());
            assert_eq!(back.name(), job.name());
        }
        assert_eq!(ServiceJob::from_json(&Json::obj([("kind", Json::str("nope"))])), None);
    }

    #[test]
    fn execute_produces_decodable_ledger_payloads() {
        for job in [tiny_experiment(2), tiny_crash()] {
            let payload = job.execute().unwrap();
            assert!(job.payload_is_decodable(&payload), "{}", job.name());
            assert!(!job.payload_is_decodable(&Json::str("garbage")));
        }
    }

    #[test]
    fn execution_is_deterministic_across_calls() {
        let job = tiny_experiment(7);
        let a = job.execute().unwrap().to_line();
        let b = job.execute().unwrap().to_line();
        assert_eq!(a, b, "same spec, same bytes — the distributed determinism base case");
    }
}
