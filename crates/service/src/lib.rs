//! proteus-service: distributed sweep coordination for the Proteus
//! workspace.
//!
//! Three layers, std-only (no async runtime, no HTTP library):
//!
//! * **Coordinator** ([`coordinator`]): owns a spec-hash-keyed job
//!   queue backed by the same resumable JSONL ledger local sweeps use.
//!   Talks to workers over a tiny length-prefixed JSON frame protocol
//!   ([`frame`], [`proto`]) with heartbeats, per-job lease timeouts,
//!   crash detection with reassignment, bounded work-stealing, and
//!   first-result-wins dedup so a reassigned job can never be counted
//!   twice.
//! * **HTTP front-end** ([`http`]): submit sweeps, poll status, stream
//!   results and traces as JSONL, scrape `/metrics` backed by the
//!   [`registry::MetricsRegistry`].
//! * **Load generator** ([`loadgen`]): boots the whole stack
//!   in-process and hammers it with concurrent duplicate-heavy
//!   submissions, asserting zero lost and zero duplicated jobs and —
//!   the property the rest of the workspace is built around —
//!   byte-identical results to a single-process `Harness` run.

#![warn(missing_docs)]

pub mod coordinator;
pub mod frame;
pub mod http;
pub mod job;
pub mod loadgen;
pub mod proto;
pub mod registry;
pub mod worker;

pub use coordinator::{Coordinator, CoordinatorConfig, SubmitStatus};
pub use frame::{read_frame, write_frame, FrameError, FrameReader, MAX_FRAME_BYTES};
pub use http::{http_request, HttpServer};
pub use job::{ServiceJob, WireResult};
pub use loadgen::{build_basket, run_loadgen, LoadgenOptions};
pub use proto::{ToCoordinator, ToWorker};
pub use registry::MetricsRegistry;
pub use worker::{run_worker, WorkerOptions, WorkerReport};
