//! The coordinator: job queue, leases, reassignment, result dedup.
//!
//! One coordinator process owns the spec-hash-keyed job queue and is
//! the only writer of the results ledger — the same resumable JSONL
//! ledger local sweeps use, so a coordinator restarted onto an existing
//! ledger resumes exactly like `Harness::run` does (completed records
//! short-circuit, anything else re-runs).
//!
//! # Failure model
//!
//! Two distinct mechanisms cover the two ways a worker disappears:
//!
//! * **Connection drop** (killed process): the per-connection handler
//!   notices EOF/error and immediately releases every lease that
//!   connection's workers held — no waiting for a timeout.
//! * **Lease expiry** (zombie: connection open, heartbeats stopped): a
//!   sweeper thread requeues any job whose lease deadline passed.
//!   Heartbeats extend the leases of everything their worker holds.
//!
//! Either path increments the job's assignment count; a job that
//! exhausts [`CoordinatorConfig::max_assignments`] is recorded as
//! failed in the ledger (with a note naming the exhaustion) instead of
//! looping forever — a sweep can therefore never silently stall on a
//! poison job.
//!
//! **Work stealing**: an idle worker with an empty queue may receive a
//! bounded speculative duplicate (one per job) of the longest-running
//! single-leased job. Whichever copy reports first wins; the result
//! table is keyed by spec hash and records exactly one terminal record
//! per job, so duplicates and late zombies can never double-count.

use crate::frame::{write_frame, FrameReader};
use crate::job::{ServiceJob, WireResult};
use crate::proto::{ToCoordinator, ToWorker};
use crate::registry::MetricsRegistry;
use proteus_harness::{Json, LedgerRecord, LedgerSnapshot, LedgerWriter};
use proteus_types::JobOutcome;
use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Coordinator knobs.
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// Lease duration per assignment; heartbeats refresh it.
    pub lease_ms: u64,
    /// Total assignment budget per job (first assignment + every
    /// reassignment or steal). Exhaustion records a failed outcome.
    pub max_assignments: u32,
    /// Allow idle workers to speculatively duplicate the
    /// longest-running single-leased job.
    pub steal: bool,
    /// Results ledger path; enables restart-resume when set.
    pub ledger: Option<PathBuf>,
    /// How long an empty `Request` parks on the queue before the
    /// worker is told to idle.
    pub idle_wait_ms: u64,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        CoordinatorConfig {
            lease_ms: 30_000,
            max_assignments: 3,
            steal: true,
            ledger: None,
            idle_wait_ms: 200,
        }
    }
}

/// What happened to a submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitStatus {
    /// New job, queued for execution.
    Queued,
    /// Same spec hash already queued or running — not enqueued again.
    Deduped,
    /// Same spec hash already has a terminal result (this run or a
    /// prior ledger) — nothing to do.
    Done,
}

struct JobState {
    job: ServiceJob,
    encoded: Json,
    name: String,
    queued_at: Instant,
    assignments: u32,
    /// worker_id -> lease deadline.
    leases: HashMap<u64, Instant>,
    stolen: bool,
}

#[derive(Debug, Clone)]
struct WorkerInfo {
    name: String,
    connected: bool,
}

struct State {
    queue: VecDeque<u64>,
    jobs: HashMap<u64, JobState>,
    /// Every spec ever accepted, kept past completion so the trace
    /// endpoint can deterministically re-run a finished job.
    specs: HashMap<u64, ServiceJob>,
    results: HashMap<u64, LedgerRecord>,
    /// Submission order of every hash ever accepted (for status pages).
    order: Vec<u64>,
    sweeps: Vec<Vec<u64>>,
    next_worker_id: u64,
    workers: HashMap<u64, WorkerInfo>,
    ledger: Option<LedgerWriter>,
}

struct Inner {
    state: Mutex<State>,
    cv: Condvar,
    metrics: Arc<MetricsRegistry>,
    cfg: CoordinatorConfig,
    snapshot: LedgerSnapshot,
    shutdown: AtomicBool,
}

/// Handle to a running coordinator (accept + lease-sweeper threads).
pub struct Coordinator {
    inner: Arc<Inner>,
    addr: SocketAddr,
}

impl Coordinator {
    /// Binds `addr` (e.g. `127.0.0.1:0`) and starts the accept and
    /// lease-sweeper threads.
    ///
    /// # Errors
    ///
    /// Returns a rendered error if the ledger cannot be opened or the
    /// address cannot be bound.
    pub fn start(addr: &str, cfg: CoordinatorConfig) -> Result<Coordinator, String> {
        let snapshot = match &cfg.ledger {
            Some(path) => LedgerSnapshot::load(path).map_err(|e| e.to_string())?,
            None => LedgerSnapshot::default(),
        };
        let ledger = match &cfg.ledger {
            Some(path) => Some(LedgerWriter::append(path).map_err(|e| e.to_string())?),
            None => None,
        };
        let listener = TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
        listener.set_nonblocking(true).map_err(|e| format!("nonblocking: {e}"))?;
        let local = listener.local_addr().map_err(|e| e.to_string())?;
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                jobs: HashMap::new(),
                specs: HashMap::new(),
                results: HashMap::new(),
                order: Vec::new(),
                sweeps: Vec::new(),
                next_worker_id: 1,
                workers: HashMap::new(),
                ledger,
            }),
            cv: Condvar::new(),
            metrics: Arc::new(MetricsRegistry::new()),
            cfg,
            snapshot,
            shutdown: AtomicBool::new(false),
        });

        let accept_inner = Arc::clone(&inner);
        std::thread::spawn(move || accept_loop(&listener, &accept_inner));
        let sweep_inner = Arc::clone(&inner);
        std::thread::spawn(move || lease_sweeper(&sweep_inner));

        Ok(Coordinator { inner, addr: local })
    }

    /// The bound worker-protocol address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared metrics registry.
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.inner.metrics)
    }

    /// Submits one job, deduplicating by spec hash against queued,
    /// running, and terminal jobs — and against completed records of a
    /// resumed ledger.
    pub fn submit(&self, job: ServiceJob) -> (u64, SubmitStatus) {
        let hash = job.spec_hash();
        let m = &self.inner.metrics;
        m.counter_add("service_submissions_total", 1);
        let mut st = self.lock();
        if st.results.contains_key(&hash) {
            m.counter_add("service_submissions_deduped_total", 1);
            return (hash, SubmitStatus::Done);
        }
        if st.jobs.contains_key(&hash) {
            m.counter_add("service_submissions_deduped_total", 1);
            return (hash, SubmitStatus::Deduped);
        }
        // Ledger resume: a completed, decodable record satisfies the
        // job without execution — the same predicate Harness::run uses.
        if let Some(rec) = self.inner.snapshot.completed(hash) {
            if job.payload_is_decodable(&rec.payload) {
                st.results.insert(hash, rec.clone());
                st.specs.insert(hash, job);
                st.order.push(hash);
                m.counter_add("service_jobs_resumed_total", 1);
                self.inner.cv.notify_all();
                return (hash, SubmitStatus::Done);
            }
        }
        let name = job.name();
        let encoded = job.to_json();
        st.specs.insert(hash, job.clone());
        st.jobs.insert(
            hash,
            JobState {
                job,
                encoded,
                name,
                queued_at: Instant::now(),
                assignments: 0,
                leases: HashMap::new(),
                stolen: false,
            },
        );
        st.order.push(hash);
        st.queue.push_back(hash);
        m.gauge_set("service_queue_depth", st.queue.len() as i64);
        self.inner.cv.notify_all();
        (hash, SubmitStatus::Queued)
    }

    /// Submits a batch as one sweep; returns the sweep id and per-job
    /// submission statuses.
    pub fn submit_sweep(&self, jobs: Vec<ServiceJob>) -> (usize, Vec<(u64, SubmitStatus)>) {
        let statuses: Vec<(u64, SubmitStatus)> = jobs.into_iter().map(|j| self.submit(j)).collect();
        let mut st = self.lock();
        st.sweeps.push(statuses.iter().map(|(h, _)| *h).collect());
        (st.sweeps.len() - 1, statuses)
    }

    /// Jobs not yet terminal.
    pub fn pending(&self) -> usize {
        self.lock().jobs.len()
    }

    /// Blocks until every submitted job is terminal or `timeout`
    /// passes; true when drained.
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut st = self.lock();
        while !st.jobs.is_empty() {
            let Some(left) = deadline.checked_duration_since(Instant::now()) else {
                return false;
            };
            let (guard, _) = self.inner.cv.wait_timeout(st, left).expect("coordinator lock");
            st = guard;
        }
        true
    }

    /// The terminal record for `hash`, if any.
    pub fn result(&self, hash: u64) -> Option<LedgerRecord> {
        self.lock().results.get(&hash).cloned()
    }

    /// Canonical JSONL export of every terminal result, sorted by spec
    /// hash — byte-comparable with
    /// `LedgerSnapshot::canonical_export()` of a single-process run.
    pub fn canonical_export(&self) -> String {
        let st = self.lock();
        let mut hashes: Vec<u64> = st.results.keys().copied().collect();
        hashes.sort_unstable();
        let mut out = String::new();
        for h in hashes {
            out.push_str(&st.results[&h].canonical_line());
            out.push('\n');
        }
        out
    }

    /// Service-wide status object.
    pub fn status_json(&self) -> Json {
        let st = self.lock();
        let connected = st.workers.values().filter(|w| w.connected).count();
        let mut names: Vec<&str> =
            st.workers.values().filter(|w| w.connected).map(|w| w.name.as_str()).collect();
        names.sort_unstable();
        let workers = Json::Arr(names.into_iter().map(Json::str).collect());
        Json::obj([
            ("jobs_total", Json::U64(st.order.len() as u64)),
            ("jobs_pending", Json::U64(st.jobs.len() as u64)),
            ("jobs_queued", Json::U64(st.queue.len() as u64)),
            ("jobs_done", Json::U64(st.results.len() as u64)),
            ("sweeps", Json::U64(st.sweeps.len() as u64)),
            ("workers_connected", Json::U64(connected as u64)),
            ("workers", workers),
        ])
    }

    /// Status of one sweep, or `None` for an unknown id.
    pub fn sweep_status_json(&self, sweep: usize) -> Option<Json> {
        let st = self.lock();
        let hashes = st.sweeps.get(sweep)?;
        let mut completed = 0u64;
        let mut failed = 0u64;
        let mut crashed = 0u64;
        let mut pending = 0u64;
        for h in hashes {
            match st.results.get(h).map(|r| &r.outcome) {
                Some(JobOutcome::Completed) => completed += 1,
                Some(JobOutcome::Failed { .. }) => failed += 1,
                Some(JobOutcome::Crashed { .. }) => crashed += 1,
                None => pending += 1,
            }
        }
        Some(Json::obj([
            ("sweep", Json::U64(sweep as u64)),
            ("total", Json::U64(hashes.len() as u64)),
            ("completed", Json::U64(completed)),
            ("failed", Json::U64(failed)),
            ("crashed", Json::U64(crashed)),
            ("pending", Json::U64(pending)),
            ("done", Json::Bool(pending == 0)),
        ]))
    }

    /// Terminal results of one sweep as ledger-record JSONL, or `None`
    /// for an unknown id. Pending jobs are simply absent; poll the
    /// status endpoint for completion.
    pub fn sweep_results_jsonl(&self, sweep: usize) -> Option<String> {
        let st = self.lock();
        let hashes = st.sweeps.get(sweep)?;
        let mut out = String::new();
        for h in hashes {
            if let Some(rec) = st.results.get(h) {
                out.push_str(&rec.to_json().to_line());
                out.push('\n');
            }
        }
        Some(out)
    }

    /// The job status for one spec hash, or `None` if never submitted.
    pub fn job_status_json(&self, hash: u64) -> Option<Json> {
        let st = self.lock();
        if let Some(rec) = st.results.get(&hash) {
            return Some(Json::obj([
                ("spec_hash", Json::str(format!("{hash:016x}"))),
                ("name", Json::str(rec.name.clone())),
                ("state", Json::str("done")),
                ("outcome", Json::str(rec.outcome.label())),
            ]));
        }
        let js = st.jobs.get(&hash)?;
        let state = if js.leases.is_empty() { "queued" } else { "running" };
        Some(Json::obj([
            ("spec_hash", Json::str(format!("{hash:016x}"))),
            ("name", Json::str(js.name.clone())),
            ("state", Json::str(state)),
            ("assignments", Json::U64(u64::from(js.assignments))),
        ]))
    }

    /// The submitted job for `hash` — available for active and
    /// finished jobs alike, so a finished job can be deterministically
    /// re-run (the trace endpoint relies on this).
    pub fn job_for(&self, hash: u64) -> Option<ServiceJob> {
        self.lock().specs.get(&hash).cloned()
    }

    /// Signals shutdown: workers get `Shutdown` on their next request,
    /// handler threads drain, the accept loop stops.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.cv.notify_all();
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.inner.state.lock().expect("coordinator lock")
    }
}

impl Drop for Coordinator {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, inner: &Arc<Inner>) {
    while !inner.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let inner = Arc::clone(inner);
                std::thread::spawn(move || handle_connection(stream, &inner));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(25)),
        }
    }
}

fn handle_connection(mut stream: TcpStream, inner: &Arc<Inner>) {
    // The listener is nonblocking; on some platforms (Windows)
    // accepted sockets inherit that, so force blocking mode before the
    // timeout-polled read loop below.
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    // Worker ids registered over THIS connection: a dropped connection
    // releases exactly these workers' leases.
    let mut local_workers: Vec<u64> = Vec::new();
    // Resumable reader: a read timeout mid-frame (network stall inside
    // a large Done payload) keeps the partial frame buffered, so the
    // retry below resumes the same frame instead of desyncing the
    // stream.
    let mut reader = FrameReader::new();
    loop {
        match reader.read(&mut stream) {
            Ok(Some(msg)) => {
                inner.metrics.counter_add("service_frames_rx_total", 1);
                inner.metrics.observe("service_frame_bytes", msg.to_line().len() as u64);
                let Some(msg) = ToCoordinator::from_json(&msg) else {
                    // An unintelligible peer gets disconnected; its
                    // leases are released below.
                    break;
                };
                if let Some(reply) = handle_message(msg, inner, &mut local_workers) {
                    let frame = reply.to_json();
                    inner.metrics.counter_add("service_frames_tx_total", 1);
                    inner.metrics.observe("service_frame_bytes", frame.to_line().len() as u64);
                    if write_frame(&mut stream, &frame).is_err() {
                        break;
                    }
                }
            }
            Ok(None) => break,
            Err(e) if e.is_timeout() => {
                if inner.shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    // Crash detection path 1: the connection is gone, so every lease
    // its workers held is released immediately.
    let mut st = inner.state.lock().expect("coordinator lock");
    for wid in local_workers {
        if let Some(w) = st.workers.get_mut(&wid) {
            w.connected = false;
        }
        release_worker_leases(&mut st, inner, wid);
    }
    let connected = st.workers.values().filter(|w| w.connected).count();
    inner.metrics.gauge_set("service_workers_connected", connected as i64);
    inner.cv.notify_all();
}

fn handle_message(
    msg: ToCoordinator,
    inner: &Arc<Inner>,
    local_workers: &mut Vec<u64>,
) -> Option<ToWorker> {
    match msg {
        ToCoordinator::Hello { name } => {
            let mut st = inner.state.lock().expect("coordinator lock");
            let wid = st.next_worker_id;
            st.next_worker_id += 1;
            st.workers.insert(wid, WorkerInfo { name, connected: true });
            local_workers.push(wid);
            let connected = st.workers.values().filter(|w| w.connected).count();
            inner.metrics.gauge_set("service_workers_connected", connected as i64);
            let lease_ms = inner.cfg.lease_ms;
            Some(ToWorker::Welcome {
                worker_id: wid,
                lease_ms,
                heartbeat_ms: (lease_ms / 3).max(10),
            })
        }
        ToCoordinator::Request { worker_id } => Some(assign_or_idle(inner, worker_id)),
        ToCoordinator::Heartbeat { worker_id } => {
            let mut st = inner.state.lock().expect("coordinator lock");
            let deadline = Instant::now() + Duration::from_millis(inner.cfg.lease_ms);
            for js in st.jobs.values_mut() {
                if let Some(lease) = js.leases.get_mut(&worker_id) {
                    *lease = deadline;
                }
            }
            None
        }
        ToCoordinator::Done { worker_id, result } => {
            record_result(inner, worker_id, result);
            None
        }
    }
}

fn assign_or_idle(inner: &Arc<Inner>, worker_id: u64) -> ToWorker {
    let deadline = Instant::now() + Duration::from_millis(inner.cfg.idle_wait_ms);
    let mut st = inner.state.lock().expect("coordinator lock");
    loop {
        if inner.shutdown.load(Ordering::SeqCst) {
            return ToWorker::Shutdown;
        }
        // Queued work first.
        while let Some(hash) = st.queue.pop_front() {
            let Some(js) = st.jobs.get_mut(&hash) else { continue };
            js.assignments += 1;
            js.leases.insert(worker_id, Instant::now() + Duration::from_millis(inner.cfg.lease_ms));
            let waited = js.queued_at.elapsed().as_millis() as u64;
            let job = js.encoded.clone();
            inner.metrics.observe("service_queue_wait_ms", waited);
            inner.metrics.gauge_set("service_queue_depth", st.queue.len() as i64);
            return ToWorker::Assign { job };
        }
        // Work stealing: duplicate the longest-running job that has
        // exactly one lease (held by someone else), was never stolen,
        // and still has assignment budget for the duplicate.
        if inner.cfg.steal {
            let candidate = st
                .jobs
                .iter()
                .filter(|(_, js)| {
                    js.leases.len() == 1
                        && !js.stolen
                        && !js.leases.contains_key(&worker_id)
                        && js.assignments < inner.cfg.max_assignments
                })
                // Earliest lease deadline == longest-running (leases
                // share one duration).
                .min_by_key(|(_, js)| js.leases.values().min().copied())
                .map(|(h, _)| *h);
            if let Some(hash) = candidate {
                let js = st.jobs.get_mut(&hash).expect("candidate exists");
                js.stolen = true;
                js.assignments += 1;
                js.leases
                    .insert(worker_id, Instant::now() + Duration::from_millis(inner.cfg.lease_ms));
                inner.metrics.counter_add("service_jobs_stolen_total", 1);
                return ToWorker::Assign { job: js.encoded.clone() };
            }
        }
        let Some(left) = deadline.checked_duration_since(Instant::now()) else {
            return ToWorker::Idle { wait_ms: inner.cfg.idle_wait_ms };
        };
        let (guard, _) = inner.cv.wait_timeout(st, left).expect("coordinator lock");
        st = guard;
    }
}

fn record_result(inner: &Arc<Inner>, worker_id: u64, result: WireResult) {
    let mut st = inner.state.lock().expect("coordinator lock");
    let hash = result.spec_hash;
    let Some(js) = st.jobs.get_mut(&hash) else {
        if st.results.contains_key(&hash) {
            // Reassignment race: the job already reached a terminal
            // state via another worker (or a zombie reported after
            // expiry). First result won; this one is counted and
            // dropped.
            inner.metrics.counter_add("service_duplicate_results_total", 1);
        } else {
            // A result for a hash never submitted — e.g. a worker that
            // could not decode its envelope reports spec_hash 0. The
            // worker has clearly abandoned whatever it was leased, so
            // release its leases now; waiting out the lease would only
            // delay the requeue.
            inner.metrics.counter_add("service_unmatched_results_total", 1);
            release_worker_leases(&mut st, inner, worker_id);
            inner.cv.notify_all();
        }
        return;
    };
    js.leases.remove(&worker_id);
    // A "completed" result whose payload the job's own codec cannot
    // read would poison the ledger; demote it to a failure.
    let outcome = match result.outcome {
        JobOutcome::Completed if !js.job.payload_is_decodable(&result.payload) => {
            JobOutcome::Failed { error: "worker returned an undecodable payload".to_string() }
        }
        o => o,
    };
    let payload = if outcome.is_completed() { result.payload } else { Json::Null };
    let record = LedgerRecord {
        spec_hash: hash,
        name: js.name.clone(),
        outcome,
        attempts: result.attempts,
        wall_seconds: result.wall_seconds,
        payload,
    };
    finish_job(&mut st, inner, record);
    inner.cv.notify_all();
}

/// Moves a job to its terminal record: results table, ledger, metrics.
fn finish_job(st: &mut State, inner: &Arc<Inner>, record: LedgerRecord) {
    let hash = record.spec_hash;
    st.jobs.remove(&hash);
    match &record.outcome {
        JobOutcome::Completed => inner.metrics.counter_add("service_jobs_completed_total", 1),
        JobOutcome::Failed { .. } => inner.metrics.counter_add("service_jobs_failed_total", 1),
        JobOutcome::Crashed { .. } => inner.metrics.counter_add("service_jobs_crashed_total", 1),
    }
    inner.metrics.observe("service_job_wall_ms", (record.wall_seconds * 1000.0).max(0.0) as u64);
    if let Some(w) = st.ledger.as_mut() {
        if w.record(&record).is_err() {
            inner.metrics.counter_add("service_ledger_write_errors_total", 1);
        }
    }
    st.results.insert(hash, record);
}

fn release_worker_leases(st: &mut State, inner: &Arc<Inner>, worker_id: u64) {
    let held: Vec<u64> = st
        .jobs
        .iter()
        .filter(|(_, js)| js.leases.contains_key(&worker_id))
        .map(|(h, _)| *h)
        .collect();
    for hash in held {
        let js = st.jobs.get_mut(&hash).expect("held job exists");
        js.leases.remove(&worker_id);
        requeue_or_exhaust(st, inner, hash);
    }
}

/// After a lease was released: requeue if the job has no other lease,
/// or record exhaustion if its assignment budget is spent.
fn requeue_or_exhaust(st: &mut State, inner: &Arc<Inner>, hash: u64) {
    let Some(js) = st.jobs.get_mut(&hash) else { return };
    if !js.leases.is_empty() {
        return; // a duplicate (steal) is still running it
    }
    if js.assignments >= inner.cfg.max_assignments {
        let record = LedgerRecord {
            spec_hash: hash,
            name: js.name.clone(),
            outcome: JobOutcome::Failed {
                error: format!(
                    "exhausted {} assignments (workers lost or leases expired)",
                    js.assignments
                ),
            },
            attempts: js.assignments,
            wall_seconds: 0.0,
            payload: Json::Null,
        };
        inner.metrics.counter_add("service_jobs_exhausted_total", 1);
        finish_job(st, inner, record);
        return;
    }
    js.queued_at = Instant::now();
    st.queue.push_back(hash);
    inner.metrics.counter_add("service_jobs_reassigned_total", 1);
    inner.metrics.gauge_set("service_queue_depth", st.queue.len() as i64);
}

fn lease_sweeper(inner: &Arc<Inner>) {
    let period = Duration::from_millis((inner.cfg.lease_ms / 4).clamp(10, 250));
    while !inner.shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(period);
        let now = Instant::now();
        let mut st = inner.state.lock().expect("coordinator lock");
        let expired: Vec<u64> = st
            .jobs
            .iter()
            .filter(|(_, js)| js.leases.values().any(|d| *d <= now))
            .map(|(h, _)| *h)
            .collect();
        if expired.is_empty() {
            continue;
        }
        for hash in expired {
            let js = st.jobs.get_mut(&hash).expect("expired job exists");
            js.leases.retain(|_, d| *d > now);
            requeue_or_exhaust(&mut st, inner, hash);
        }
        inner.cv.notify_all();
    }
}
