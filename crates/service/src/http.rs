//! Minimal HTTP/1.1 front-end over the coordinator.
//!
//! Std-only by design: a polling `TcpListener`, one thread per
//! connection, `Connection: close` on every response. That is entirely
//! adequate for a sweep-control plane — requests are small, responses
//! are JSON/JSONL, and the heavy lifting happens on the worker
//! protocol, not here. Each request must arrive in full within a
//! fixed deadline of accept (`REQUEST_DEADLINE`, 10 s), so a slow or
//! stalled client cannot hold a handler thread (and its body buffer)
//! open indefinitely.
//!
//! Routes:
//!
//! | Method | Path | Body / reply |
//! |---|---|---|
//! | GET  | `/healthz`                 | `ok` |
//! | GET  | `/metrics`                 | text exposition format |
//! | GET  | `/api/status`              | service-wide counts |
//! | POST | `/api/sweeps`              | `{"jobs":[envelope…]}` → sweep id |
//! | GET  | `/api/sweeps/<id>`         | sweep status |
//! | GET  | `/api/sweeps/<id>/results` | terminal results, ledger JSONL |
//! | GET  | `/api/export`              | canonical export (sorted JSONL) |
//! | GET  | `/api/jobs/<hash16>`       | one job's status |
//! | GET  | `/api/jobs/<hash16>/trace` | deterministic traced re-run, JSONL |

use crate::coordinator::{Coordinator, SubmitStatus};
use crate::job::ServiceJob;
use proteus_harness::{json, Json};
use proteus_sim::runner::run_one_traced;
use proteus_types::TraceConfig;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Largest request body the server accepts (same cap as the frame
/// protocol; a sweep of thousands of specs fits comfortably).
pub const MAX_BODY_BYTES: usize = 32 * 1024 * 1024;

/// Overall budget for reading one request, measured from accept. A
/// per-read timeout alone resets on every byte, so a client trickling
/// one header byte at a time could hold a thread (and its body buffer)
/// indefinitely; this caps the whole request instead.
const REQUEST_DEADLINE: Duration = Duration::from_secs(10);

/// Per-read slice; short so the overall deadline is checked between
/// reads even against a silent peer.
const READ_SLICE: Duration = Duration::from_secs(1);

/// Handle to the running HTTP server.
pub struct HttpServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
}

impl HttpServer {
    /// Binds `addr` and serves the coordinator until [`HttpServer::shutdown`].
    ///
    /// # Errors
    ///
    /// Returns a rendered error if the address cannot be bound.
    pub fn start(addr: &str, coord: Arc<Coordinator>) -> Result<HttpServer, String> {
        let listener = TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
        listener.set_nonblocking(true).map_err(|e| format!("nonblocking: {e}"))?;
        let local = listener.local_addr().map_err(|e| e.to_string())?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let stop = Arc::clone(&shutdown);
        std::thread::spawn(move || {
            while !stop.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let coord = Arc::clone(&coord);
                        std::thread::spawn(move || handle_http(stream, &coord));
                    }
                    // A tight poll: submit latency is bounded below by
                    // this sleep, so it is much shorter than the
                    // worker-protocol accept poll (workers connect
                    // once; HTTP clients connect per request).
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(1)),
                }
            }
        });
        Ok(HttpServer { addr: local, shutdown })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting connections.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn handle_http(mut stream: TcpStream, coord: &Arc<Coordinator>) {
    // The listener is nonblocking; force the accepted socket back to
    // blocking mode (inherited nonblocking on some platforms) before
    // the timed reads below.
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(READ_SLICE));
    let deadline = Instant::now() + REQUEST_DEADLINE;
    let Some((method, path, body)) = read_request(&mut stream, deadline) else {
        let _ = respond(&mut stream, 400, "text/plain", "bad request\n");
        return;
    };
    let (status, ctype, body) = route(coord, &method, &path, &body);
    let _ = respond(&mut stream, status, ctype, &body);
}

/// One read against the overall request deadline: retries read-timeout
/// slices until bytes arrive or the deadline passes. `None` means the
/// request should be abandoned (deadline hit or transport error).
fn read_some(stream: &mut TcpStream, chunk: &mut [u8], deadline: Instant) -> Option<usize> {
    loop {
        if Instant::now() >= deadline {
            return None;
        }
        match stream.read(chunk) {
            Ok(n) => return Some(n),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) => {}
            Err(_) => return None,
        }
    }
}

/// Parses one request: request line, headers (only `Content-Length`
/// matters), then exactly that many body bytes — all within `deadline`.
fn read_request(stream: &mut TcpStream, deadline: Instant) -> Option<(String, String, String)> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let header_end = loop {
        if let Some(pos) = find_header_end(&buf) {
            break pos;
        }
        if buf.len() > 64 * 1024 {
            return None; // header flood
        }
        let n = read_some(stream, &mut chunk, deadline)?;
        if n == 0 {
            return None;
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buf[..header_end]).ok()?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next()?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next()?.to_string();
    let path = parts.next()?.to_string();
    let mut content_length = 0usize;
    for line in lines {
        let Some((k, v)) = line.split_once(':') else { continue };
        if k.trim().eq_ignore_ascii_case("content-length") {
            content_length = v.trim().parse().ok()?;
        }
    }
    if content_length > MAX_BODY_BYTES {
        return None;
    }
    let mut body = buf[header_end + 4..].to_vec();
    while body.len() < content_length {
        let n = read_some(stream, &mut chunk, deadline)?;
        if n == 0 {
            return None;
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Some((method, path, String::from_utf8(body).ok()?))
}

fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn respond(stream: &mut TcpStream, status: u16, ctype: &str, body: &str) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Error",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

fn route(
    coord: &Arc<Coordinator>,
    method: &str,
    path: &str,
    body: &str,
) -> (u16, &'static str, String) {
    match (method, path) {
        ("GET", "/healthz") => (200, "text/plain", "ok\n".to_string()),
        ("GET", "/metrics") => (200, "text/plain", coord.metrics().render()),
        ("GET", "/api/status") => (200, "application/json", coord.status_json().to_line()),
        ("POST", "/api/sweeps") => submit_sweep(coord, body),
        ("GET", "/api/export") => (200, "application/jsonl", coord.canonical_export()),
        ("GET", p) => route_get(coord, p),
        _ => (405, "text/plain", "method not allowed\n".to_string()),
    }
}

fn route_get(coord: &Arc<Coordinator>, path: &str) -> (u16, &'static str, String) {
    if let Some(rest) = path.strip_prefix("/api/sweeps/") {
        if let Some(id) = rest.strip_suffix("/results") {
            let Ok(id) = id.parse::<usize>() else {
                return (400, "text/plain", "bad sweep id\n".to_string());
            };
            return match coord.sweep_results_jsonl(id) {
                Some(body) => (200, "application/jsonl", body),
                None => (404, "text/plain", "unknown sweep\n".to_string()),
            };
        }
        let Ok(id) = rest.parse::<usize>() else {
            return (400, "text/plain", "bad sweep id\n".to_string());
        };
        return match coord.sweep_status_json(id) {
            Some(v) => (200, "application/json", v.to_line()),
            None => (404, "text/plain", "unknown sweep\n".to_string()),
        };
    }
    if let Some(rest) = path.strip_prefix("/api/jobs/") {
        if let Some(hex) = rest.strip_suffix("/trace") {
            return trace_job(coord, hex);
        }
        let Ok(hash) = u64::from_str_radix(rest, 16) else {
            return (400, "text/plain", "bad spec hash\n".to_string());
        };
        return match coord.job_status_json(hash) {
            Some(v) => (200, "application/json", v.to_line()),
            None => (404, "text/plain", "unknown job\n".to_string()),
        };
    }
    (404, "text/plain", "not found\n".to_string())
}

/// Re-runs a known experiment job with tracing on and streams the
/// trace JSONL. Determinism makes this sound: the traced re-run
/// reproduces exactly the run the worker executed.
fn trace_job(coord: &Arc<Coordinator>, hex: &str) -> (u16, &'static str, String) {
    let Ok(hash) = u64::from_str_radix(hex, 16) else {
        return (400, "text/plain", "bad spec hash\n".to_string());
    };
    match coord.job_for(hash) {
        Some(ServiceJob::Experiment(spec)) => {
            match run_one_traced(&spec, &TraceConfig::enabled()) {
                Ok((_, Some(report))) => (200, "application/jsonl", report.to_jsonl_summary()),
                Ok((_, None)) => (404, "text/plain", "no trace produced\n".to_string()),
                Err(e) => (400, "text/plain", format!("trace failed: {e}\n")),
            }
        }
        Some(ServiceJob::Crash(_)) => {
            (400, "text/plain", "crash jobs have no cycle trace\n".to_string())
        }
        None => (404, "text/plain", "unknown job\n".to_string()),
    }
}

fn submit_sweep(coord: &Arc<Coordinator>, body: &str) -> (u16, &'static str, String) {
    let Ok(v) = json::parse(body) else {
        return (400, "text/plain", "body is not json\n".to_string());
    };
    let Some(envelopes) = v.get("jobs").and_then(Json::as_arr) else {
        return (400, "text/plain", "body needs a jobs array\n".to_string());
    };
    let mut jobs = Vec::with_capacity(envelopes.len());
    for env in envelopes {
        let Some(job) = ServiceJob::from_json(env) else {
            return (400, "text/plain", "undecodable job envelope\n".to_string());
        };
        jobs.push(job);
    }
    let (sweep, statuses) = coord.submit_sweep(jobs);
    let mut queued = 0u64;
    let mut deduped = 0u64;
    let mut done = 0u64;
    for (_, s) in &statuses {
        match s {
            SubmitStatus::Queued => queued += 1,
            SubmitStatus::Deduped => deduped += 1,
            SubmitStatus::Done => done += 1,
        }
    }
    let reply = Json::obj([
        ("sweep", Json::U64(sweep as u64)),
        ("submitted", Json::U64(statuses.len() as u64)),
        ("queued", Json::U64(queued)),
        ("deduped", Json::U64(deduped)),
        ("done", Json::U64(done)),
    ]);
    (200, "application/json", reply.to_line())
}

/// Tiny blocking HTTP client for tests, the load generator, and the
/// CLI: one request, `Connection: close`, returns (status, body).
///
/// # Errors
///
/// Returns a rendered error on connect/send/parse failures.
pub fn http_request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<(u16, String), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let _ = stream.set_nodelay(true);
    let body = body.unwrap_or("");
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).map_err(|e| format!("send: {e}"))?;
    let mut buf = Vec::new();
    stream.read_to_end(&mut buf).map_err(|e| format!("recv: {e}"))?;
    let text = String::from_utf8(buf).map_err(|e| format!("utf8: {e}"))?;
    let (head, rest) = text.split_once("\r\n\r\n").ok_or("no header terminator")?;
    let status_line = head.lines().next().ok_or("empty response")?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line: {status_line}"))?;
    Ok((status, rest.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_end_detection() {
        assert_eq!(find_header_end(b"GET / HTTP/1.1\r\n\r\nbody"), Some(14));
        assert_eq!(find_header_end(b"GET / HTTP/1.1\r\n"), None);
    }

    #[test]
    fn slow_clients_hit_the_request_deadline() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (mut server, _) = listener.accept().unwrap();
        let _ = server.set_read_timeout(Some(Duration::from_millis(25)));
        // A header that never completes: without the overall deadline
        // the per-read timeout would reset forever as bytes trickle.
        client.write_all(b"GET / HT").unwrap();
        let started = Instant::now();
        let deadline = started + Duration::from_millis(200);
        assert!(read_request(&mut server, deadline).is_none());
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "abandoned by the deadline, not held open by the peer"
        );
    }
}
