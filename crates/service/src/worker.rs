//! The worker: connect, heartbeat, execute, report.
//!
//! A worker is deliberately stateless: it holds no queue and no ledger.
//! Everything durable lives on the coordinator, so killing a worker at
//! any instant loses at most the in-flight attempt — the coordinator's
//! connection-drop and lease-expiry paths requeue the job, and the
//! spec-hash-keyed result table guarantees the rerun cannot
//! double-count.
//!
//! Heartbeats vouch for executor liveness, not just process liveness:
//! once the in-flight job overruns [`WorkerOptions::job_deadline_ms`]
//! the heartbeat thread stops beating, so a hung `execute()` (an
//! infinite loop in the simulator) lets its lease expire and the
//! coordinator reclaims the job instead of the sweep wedging behind a
//! forever-refreshed lease.
//!
//! Retry semantics mirror the local `Harness` scheduler exactly: a
//! clean executor `Err` is deterministic and never retried, while a
//! panic is retried up to [`WorkerOptions::max_retries`] times before
//! being reported as crashed (rendered with the same
//! [`panic_message`] the scheduler uses).

use crate::frame::{read_frame, write_frame};
use crate::job::{ServiceJob, WireResult};
use crate::proto::{ToCoordinator, ToWorker};
use proteus_harness::{panic_message, Json};
use proteus_types::JobOutcome;
use std::net::TcpStream;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Worker knobs.
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// Name presented in `Hello` (shows up in coordinator status).
    pub name: String,
    /// Extra attempts after a panic, matching `SweepOptions::max_retries`.
    pub max_retries: u32,
    /// Upper bound on one assignment's execution time. Once the
    /// in-flight job has run longer than this, the heartbeat thread
    /// stops refreshing leases so the coordinator's lease expiry can
    /// reclaim the job — otherwise a simulator hang would keep its
    /// lease alive forever and wedge the sweep. `0` disables the bound.
    pub job_deadline_ms: u64,
}

impl Default for WorkerOptions {
    fn default() -> Self {
        WorkerOptions { name: "worker".to_string(), max_retries: 1, job_deadline_ms: 600_000 }
    }
}

/// Whether a heartbeat should be sent: always while idle or under the
/// deadline, never once the in-flight job has overrun it. A worker
/// that stops beating lets lease expiry reclaim its job — the exact
/// bound leases exist to provide.
fn heartbeat_due(busy_since: Option<Instant>, job_deadline_ms: u64) -> bool {
    match busy_since {
        Some(started) if job_deadline_ms > 0 => {
            started.elapsed() < Duration::from_millis(job_deadline_ms)
        }
        _ => true,
    }
}

/// What one worker did before the coordinator shut it down.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerReport {
    /// Jobs executed to completion.
    pub completed: usize,
    /// Jobs that ended in a clean error.
    pub failed: usize,
    /// Jobs that exhausted panic retries.
    pub crashed: usize,
}

impl WorkerReport {
    /// Jobs this worker reported in total.
    pub fn total(&self) -> usize {
        self.completed + self.failed + self.crashed
    }
}

/// Runs one worker against `addr` until the coordinator says
/// `Shutdown` or the connection fails.
///
/// # Errors
///
/// Returns a rendered error when the connection cannot be established,
/// the handshake fails, or the stream dies mid-protocol.
pub fn run_worker(addr: &str, opts: &WorkerOptions) -> Result<WorkerReport, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let _ = stream.set_nodelay(true);
    // The handler thread on the coordinator is the sole writer of its
    // side; on ours, the main loop and the heartbeat thread share the
    // write half through one mutex, and only the main loop reads.
    let writer =
        Arc::new(Mutex::new(stream.try_clone().map_err(|e| format!("clone stream: {e}"))?));
    let mut reader = stream;

    send(&writer, &ToCoordinator::Hello { name: opts.name.clone() })?;
    let welcome = read_reply(&mut reader)?;
    let ToWorker::Welcome { worker_id, heartbeat_ms, .. } = welcome else {
        return Err("expected welcome".to_string());
    };

    let stop = Arc::new(AtomicBool::new(false));
    // When the executor is inside `job.execute()`, this holds the
    // instant the job started; the heartbeat thread uses it to stop
    // vouching for an executor that has overrun its deadline.
    let busy_since: Arc<Mutex<Option<Instant>>> = Arc::new(Mutex::new(None));
    let hb_writer = Arc::clone(&writer);
    let hb_stop = Arc::clone(&stop);
    let hb_busy = Arc::clone(&busy_since);
    let job_deadline_ms = opts.job_deadline_ms;
    let heartbeat = std::thread::spawn(move || {
        let period = Duration::from_millis(heartbeat_ms.max(1));
        let msg = ToCoordinator::Heartbeat { worker_id }.to_json();
        loop {
            // Sleep in small slices so shutdown is prompt even with
            // long heartbeat intervals.
            let deadline = Instant::now() + period;
            while Instant::now() < deadline {
                if hb_stop.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            if hb_stop.load(Ordering::SeqCst) {
                return;
            }
            let busy = *hb_busy.lock().expect("worker busy lock");
            if !heartbeat_due(busy, job_deadline_ms) {
                // Executor overran its deadline: skip the beat (do not
                // exit — if the job eventually finishes, beating
                // resumes for the next assignment).
                continue;
            }
            let mut w = hb_writer.lock().expect("worker writer lock");
            if write_frame(&mut *w, &msg).is_err() {
                return;
            }
        }
    });

    let result = work_loop(&writer, &mut reader, worker_id, opts, &busy_since);
    stop.store(true, Ordering::SeqCst);
    let _ = heartbeat.join();
    result
}

fn work_loop(
    writer: &Arc<Mutex<TcpStream>>,
    reader: &mut TcpStream,
    worker_id: u64,
    opts: &WorkerOptions,
    busy_since: &Arc<Mutex<Option<Instant>>>,
) -> Result<WorkerReport, String> {
    let mut report = WorkerReport::default();
    loop {
        send(writer, &ToCoordinator::Request { worker_id })?;
        match read_reply(reader)? {
            ToWorker::Assign { job } => {
                *busy_since.lock().expect("worker busy lock") = Some(Instant::now());
                let result = execute_assignment(&job, opts);
                *busy_since.lock().expect("worker busy lock") = None;
                match &result.outcome {
                    JobOutcome::Completed => report.completed += 1,
                    JobOutcome::Failed { .. } => report.failed += 1,
                    JobOutcome::Crashed { .. } => report.crashed += 1,
                }
                send(writer, &ToCoordinator::Done { worker_id, result })?;
            }
            ToWorker::Idle { wait_ms } => {
                std::thread::sleep(Duration::from_millis(wait_ms.clamp(1, 1000)));
            }
            ToWorker::Shutdown => return Ok(report),
            ToWorker::Welcome { .. } => return Err("unexpected welcome".to_string()),
        }
    }
}

/// Decodes and runs one assignment with scheduler-identical retry
/// semantics, always producing a reportable result (an undecodable
/// envelope is itself a clean failure).
fn execute_assignment(envelope: &Json, opts: &WorkerOptions) -> WireResult {
    let started = Instant::now();
    let Some(job) = ServiceJob::from_json(envelope) else {
        return WireResult {
            spec_hash: 0,
            name: "malformed".to_string(),
            outcome: JobOutcome::Failed { error: "undecodable job envelope".to_string() },
            payload: Json::Null,
            attempts: 1,
            wall_seconds: started.elapsed().as_secs_f64(),
        };
    };
    let max_attempts = opts.max_retries.saturating_add(1);
    let mut attempts = 0u32;
    let (outcome, payload) = loop {
        attempts += 1;
        match catch_unwind(AssertUnwindSafe(|| job.execute())) {
            Ok(Ok(payload)) => break (JobOutcome::Completed, payload),
            Ok(Err(error)) => {
                // Clean errors are deterministic; retrying cannot help.
                break (JobOutcome::Failed { error }, Json::Null);
            }
            Err(panic_payload) => {
                let outcome = JobOutcome::Crashed { panic: panic_message(panic_payload.as_ref()) };
                if attempts >= max_attempts {
                    break (outcome, Json::Null);
                }
            }
        }
    };
    WireResult {
        spec_hash: job.spec_hash(),
        name: job.name(),
        outcome,
        payload,
        attempts,
        wall_seconds: started.elapsed().as_secs_f64(),
    }
}

fn send(writer: &Arc<Mutex<TcpStream>>, msg: &ToCoordinator) -> Result<(), String> {
    let mut w = writer.lock().expect("worker writer lock");
    write_frame(&mut *w, &msg.to_json()).map_err(|e| format!("send: {e}"))
}

fn read_reply(reader: &mut TcpStream) -> Result<ToWorker, String> {
    match read_frame(reader) {
        Ok(Some(v)) => ToWorker::from_json(&v).ok_or_else(|| "unintelligible reply".to_string()),
        Ok(None) => Err("coordinator closed the connection".to_string()),
        Err(e) => Err(format!("read: {e}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heartbeats_flow_while_idle_or_under_deadline() {
        assert!(heartbeat_due(None, 100), "idle workers always beat");
        assert!(heartbeat_due(Some(Instant::now()), 60_000), "fresh job beats");
    }

    #[test]
    fn heartbeats_stop_once_the_job_overruns_its_deadline() {
        let started = Instant::now() - Duration::from_millis(50);
        assert!(!heartbeat_due(Some(started), 10), "overrun job must not beat");
        assert!(heartbeat_due(Some(started), 0), "0 disables the deadline");
    }
}
