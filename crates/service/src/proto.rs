//! Coordinator/worker message vocabulary.
//!
//! Strict request/reply discipline keeps the framing trivial: only
//! [`ToCoordinator::Hello`] and [`ToCoordinator::Request`] are ever
//! answered, and the coordinator never sends an unsolicited frame. The
//! per-connection handler thread is therefore the sole writer on its
//! stream, and a worker always knows exactly one reply frame follows
//! each request — no multiplexing, no sequence numbers.
//!
//! `Heartbeat` and `Done` are fire-and-forget by design: a heartbeat's
//! only job is to refresh leases, and a `Done` for a job the
//! coordinator already recorded (the reassignment race) is simply
//! ignored, so neither needs an acknowledgement.

use crate::job::WireResult;
use proteus_harness::Json;
use proteus_types::JobOutcome;

fn hash_str(h: u64) -> Json {
    Json::str(format!("{h:016x}"))
}

fn hash_from(v: &Json, key: &str) -> Option<u64> {
    u64::from_str_radix(v.get(key)?.as_str()?, 16).ok()
}

/// Frames a worker sends.
#[derive(Debug, Clone)]
pub enum ToCoordinator {
    /// Introduce this worker; answered by [`ToWorker::Welcome`].
    Hello {
        /// Free-form worker name for logs and status pages.
        name: String,
    },
    /// Ask for work; answered by `Assign`, `Idle`, or `Shutdown`.
    Request {
        /// Identity from the `Welcome`.
        worker_id: u64,
    },
    /// Keep leases on this worker's assigned jobs alive. No reply.
    Heartbeat {
        /// Identity from the `Welcome`.
        worker_id: u64,
    },
    /// Report a terminal job result. No reply.
    Done {
        /// Identity from the `Welcome`.
        worker_id: u64,
        /// The result being reported.
        result: WireResult,
    },
}

impl ToCoordinator {
    /// Wire encoding.
    pub fn to_json(&self) -> Json {
        match self {
            ToCoordinator::Hello { name } => {
                Json::obj([("type", Json::str("hello")), ("name", Json::str(name.clone()))])
            }
            ToCoordinator::Request { worker_id } => {
                Json::obj([("type", Json::str("request")), ("worker_id", Json::U64(*worker_id))])
            }
            ToCoordinator::Heartbeat { worker_id } => {
                Json::obj([("type", Json::str("heartbeat")), ("worker_id", Json::U64(*worker_id))])
            }
            ToCoordinator::Done { worker_id, result } => {
                let mut pairs = vec![
                    ("type", Json::str("done")),
                    ("worker_id", Json::U64(*worker_id)),
                    ("spec_hash", hash_str(result.spec_hash)),
                    ("name", Json::str(result.name.clone())),
                    ("outcome", Json::str(result.outcome.label())),
                ];
                if let Some(msg) = result.outcome.message() {
                    pairs.push(("message", Json::str(msg)));
                }
                pairs.push(("attempts", Json::U64(u64::from(result.attempts))));
                pairs.push(("wall_seconds", Json::F64(result.wall_seconds)));
                pairs.push(("payload", result.payload.clone()));
                Json::obj(pairs)
            }
        }
    }

    /// Wire decoding; `None` on unknown or malformed messages.
    pub fn from_json(v: &Json) -> Option<ToCoordinator> {
        match v.get("type")?.as_str()? {
            "hello" => Some(ToCoordinator::Hello { name: v.get("name")?.as_str()?.to_string() }),
            "request" => Some(ToCoordinator::Request { worker_id: v.get("worker_id")?.as_u64()? }),
            "heartbeat" => {
                Some(ToCoordinator::Heartbeat { worker_id: v.get("worker_id")?.as_u64()? })
            }
            "done" => Some(ToCoordinator::Done {
                worker_id: v.get("worker_id")?.as_u64()?,
                result: WireResult {
                    spec_hash: hash_from(v, "spec_hash")?,
                    name: v.get("name")?.as_str()?.to_string(),
                    outcome: JobOutcome::from_parts(
                        v.get("outcome")?.as_str()?,
                        v.get("message").and_then(Json::as_str),
                    )?,
                    attempts: u32::try_from(v.get("attempts")?.as_u64()?).ok()?,
                    wall_seconds: v.get("wall_seconds")?.as_f64()?,
                    payload: v.get("payload").cloned().unwrap_or(Json::Null),
                },
            }),
            _ => None,
        }
    }
}

/// Frames the coordinator sends (always as a reply).
#[derive(Debug, Clone)]
pub enum ToWorker {
    /// Reply to `Hello`: identity plus the timing contract.
    Welcome {
        /// Identity the worker must present from now on.
        worker_id: u64,
        /// Lease duration: a job unheard-of for this long is requeued.
        lease_ms: u64,
        /// How often the worker must heartbeat (well under the lease).
        heartbeat_ms: u64,
    },
    /// Reply to `Request`: here is a job (encoded [`crate::ServiceJob`]).
    Assign {
        /// The encoded job envelope.
        job: Json,
    },
    /// Reply to `Request`: nothing queued; ask again after `wait_ms`.
    Idle {
        /// Suggested client-side wait before the next request.
        wait_ms: u64,
    },
    /// Reply to `Request`: the service is draining; disconnect.
    Shutdown,
}

impl ToWorker {
    /// Wire encoding.
    pub fn to_json(&self) -> Json {
        match self {
            ToWorker::Welcome { worker_id, lease_ms, heartbeat_ms } => Json::obj([
                ("type", Json::str("welcome")),
                ("worker_id", Json::U64(*worker_id)),
                ("lease_ms", Json::U64(*lease_ms)),
                ("heartbeat_ms", Json::U64(*heartbeat_ms)),
            ]),
            ToWorker::Assign { job } => {
                Json::obj([("type", Json::str("assign")), ("job", job.clone())])
            }
            ToWorker::Idle { wait_ms } => {
                Json::obj([("type", Json::str("idle")), ("wait_ms", Json::U64(*wait_ms))])
            }
            ToWorker::Shutdown => Json::obj([("type", Json::str("shutdown"))]),
        }
    }

    /// Wire decoding; `None` on unknown or malformed messages.
    pub fn from_json(v: &Json) -> Option<ToWorker> {
        match v.get("type")?.as_str()? {
            "welcome" => Some(ToWorker::Welcome {
                worker_id: v.get("worker_id")?.as_u64()?,
                lease_ms: v.get("lease_ms")?.as_u64()?,
                heartbeat_ms: v.get("heartbeat_ms")?.as_u64()?,
            }),
            "assign" => Some(ToWorker::Assign { job: v.get("job")?.clone() }),
            "idle" => Some(ToWorker::Idle { wait_ms: v.get("wait_ms")?.as_u64()? }),
            "shutdown" => Some(ToWorker::Shutdown),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_messages_round_trip() {
        let msgs = [
            ToCoordinator::Hello { name: "w0".into() },
            ToCoordinator::Request { worker_id: 7 },
            ToCoordinator::Heartbeat { worker_id: 7 },
            ToCoordinator::Done {
                worker_id: 7,
                result: WireResult {
                    spec_hash: 0xABCD,
                    name: "QE/Proteus".into(),
                    outcome: JobOutcome::Crashed { panic: "boom".into() },
                    payload: Json::Null,
                    attempts: 2,
                    wall_seconds: 0.5,
                },
            },
        ];
        for m in msgs {
            let back = ToCoordinator::from_json(&m.to_json()).unwrap();
            assert_eq!(back.to_json().to_line(), m.to_json().to_line());
        }
    }

    #[test]
    fn coordinator_messages_round_trip() {
        let msgs = [
            ToWorker::Welcome { worker_id: 3, lease_ms: 30_000, heartbeat_ms: 10_000 },
            ToWorker::Assign { job: Json::obj([("kind", Json::str("experiment"))]) },
            ToWorker::Idle { wait_ms: 200 },
            ToWorker::Shutdown,
        ];
        for m in msgs {
            let back = ToWorker::from_json(&m.to_json()).unwrap();
            assert_eq!(back.to_json().to_line(), m.to_json().to_line());
        }
    }

    #[test]
    fn unknown_messages_decode_to_none() {
        let v = Json::obj([("type", Json::str("gossip"))]);
        assert!(ToCoordinator::from_json(&v).is_none());
        assert!(ToWorker::from_json(&v).is_none());
        assert!(ToCoordinator::from_json(&Json::Null).is_none());
    }
}
