//! The load generator: hammer the service, prove nothing is lost.
//!
//! Boots a full service in-process (coordinator + worker threads +
//! HTTP front-end on loopback), then fires thousands of concurrent
//! HTTP submissions at it — a small basket of distinct jobs submitted
//! over and over, so the run deliberately exercises the spec-hash
//! dedup path far more often than the happy path. At the end it
//! asserts the two invariants the service exists to provide:
//!
//! * **zero lost jobs** — every distinct job reached a completed
//!   terminal record;
//! * **zero duplicated jobs** — exactly one terminal record per
//!   distinct spec hash, no matter how many times it was submitted.
//!
//! With `verify` set, the same basket is also run through the local
//! `Harness` scheduler and the two canonical ledger exports are
//! compared byte-for-byte — the distributed-determinism acceptance
//! check, exercised under load.

use crate::coordinator::{Coordinator, CoordinatorConfig};
use crate::http::{http_request, HttpServer};
use crate::job::ServiceJob;
use crate::worker::{run_worker, WorkerOptions};
use proteus_crash::{ExploreSpec, FaultSpec};
use proteus_harness::{Harness, JobSpec, Json, LedgerSnapshot, PayloadCodec, SweepOptions};
use proteus_sim::runner::ExperimentSpec;
use proteus_types::config::{EngineConfig, LoggingSchemeKind, SystemConfig};
use proteus_types::stats::Log2Histogram;
use proteus_workloads::{Benchmark, ContendedKind, ContendedSpec, WorkloadParams};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Load-generator knobs.
#[derive(Debug, Clone)]
pub struct LoadgenOptions {
    /// Total HTTP submissions to fire (each one a `POST /api/sweeps`).
    pub submissions: usize,
    /// Concurrent client threads.
    pub clients: usize,
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Distinct jobs in the basket; submissions cycle through it, so
    /// `submissions - basket` submissions are deliberate duplicates.
    pub basket: usize,
    /// Also run the basket through the local `Harness` and require the
    /// canonical ledger exports to match byte-for-byte.
    pub verify: bool,
    /// Where to write the benchmark JSON (`None` = don't write).
    pub out: Option<PathBuf>,
}

impl Default for LoadgenOptions {
    fn default() -> Self {
        LoadgenOptions {
            submissions: 1000,
            clients: 8,
            workers: 4,
            basket: 24,
            verify: false,
            out: None,
        }
    }
}

/// Builds `n` distinct tiny jobs: experiment variants (one of them a
/// generated workload, so the `GEN` selector exercises the wire codec
/// end-to-end) plus a crash-exploration job, seeds varied so every
/// spec hash is unique.
pub fn build_basket(n: usize) -> Vec<ServiceJob> {
    let ycsb =
        proteus_workgen::roster::by_cli_name("ycsb-a").expect("ycsb-a preset is registered").sel();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let seed = 1000 + i as u64;
        let params = WorkloadParams { threads: 1, init_ops: 8, sim_ops: 4, seed };
        if i % 4 == 3 {
            out.push(ServiceJob::Crash(ExploreSpec {
                bench: Benchmark::Queue.into(),
                params,
                scheme: LoggingSchemeKind::Proteus,
                fault: FaultSpec::Clean,
                broken_ordering: false,
                max_points: 4,
            }));
        } else if i % 8 == 1 {
            // A contended selector: two cores sharing one MPMC queue,
            // so the CONTENDED wire codec and the coherent cache path
            // run through the service end to end.
            out.push(ServiceJob::Experiment(ExperimentSpec {
                config: SystemConfig::skylake_like().with_num_cores(2),
                scheme: LoggingSchemeKind::Proteus,
                bench: ContendedSpec { kind: ContendedKind::MpmcQueue, early_release: false }
                    .into(),
                params: WorkloadParams { threads: 2, ..params },
                engine: EngineConfig::default(),
            }));
        } else {
            let schemes = LoggingSchemeKind::ALL;
            out.push(ServiceJob::Experiment(ExperimentSpec {
                config: SystemConfig::skylake_like().with_num_cores(1),
                scheme: schemes[i % schemes.len()],
                bench: if i % 4 == 1 { ycsb.clone() } else { Benchmark::Queue.into() },
                params,
                engine: EngineConfig::default(),
            }));
        }
    }
    out
}

/// Runs the load test and returns the benchmark JSON.
///
/// # Errors
///
/// Returns a rendered error when the service fails to boot, the sweep
/// fails to drain, a job is lost or duplicated, the `/metrics` scrape
/// fails, or the verify pass diverges — all of which the CLI maps to a
/// nonzero exit status.
pub fn run_loadgen(opts: &LoadgenOptions) -> Result<Json, String> {
    if opts.submissions == 0 || opts.clients == 0 || opts.workers == 0 || opts.basket == 0 {
        return Err("submissions, clients, workers, and basket must be nonzero".to_string());
    }
    let basket = build_basket(opts.basket);

    let coord = Arc::new(Coordinator::start(
        "127.0.0.1:0",
        CoordinatorConfig { lease_ms: 10_000, ..CoordinatorConfig::default() },
    )?);
    let http = HttpServer::start("127.0.0.1:0", Arc::clone(&coord))?;
    let coord_addr = coord.local_addr().to_string();
    let http_addr = http.local_addr().to_string();

    let worker_handles: Vec<_> = (0..opts.workers)
        .map(|i| {
            let addr = coord_addr.clone();
            let wopts = WorkerOptions { name: format!("loadgen-{i}"), ..WorkerOptions::default() };
            std::thread::spawn(move || run_worker(&addr, &wopts))
        })
        .collect();

    // Pre-encode one request body per basket entry; clients cycle
    // through them by a shared atomic counter.
    let bodies: Vec<String> = basket
        .iter()
        .map(|job| Json::obj([("jobs", Json::Arr(vec![job.to_json()]))]).to_line())
        .collect();
    let bodies = Arc::new(bodies);
    let next = Arc::new(AtomicUsize::new(0));
    let errors = Arc::new(AtomicUsize::new(0));
    let latency = Arc::new(Mutex::new(Log2Histogram::default()));

    let started = Instant::now();
    let clients: Vec<_> = (0..opts.clients)
        .map(|_| {
            let bodies = Arc::clone(&bodies);
            let next = Arc::clone(&next);
            let errors = Arc::clone(&errors);
            let latency = Arc::clone(&latency);
            let addr = http_addr.clone();
            let total = opts.submissions;
            std::thread::spawn(move || {
                let mut local = Log2Histogram::default();
                loop {
                    let i = next.fetch_add(1, Ordering::SeqCst);
                    if i >= total {
                        break;
                    }
                    let body = &bodies[i % bodies.len()];
                    let t0 = Instant::now();
                    match http_request(&addr, "POST", "/api/sweeps", Some(body)) {
                        Ok((200, _)) => {}
                        _ => {
                            errors.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                    local.record(t0.elapsed().as_micros() as u64);
                }
                latency.lock().expect("latency lock").merge(&local);
            })
        })
        .collect();
    for c in clients {
        let _ = c.join();
    }
    let submit_wall = started.elapsed().as_secs_f64();

    if !coord.wait_idle(Duration::from_secs(300)) {
        return Err(format!("sweep did not drain: {} jobs still pending", coord.pending()));
    }
    let total_wall = started.elapsed().as_secs_f64();

    // Invariant: zero lost jobs — every basket entry has a completed
    // terminal record.
    for job in &basket {
        let hash = job.spec_hash();
        match coord.result(hash) {
            Some(rec) if rec.outcome.is_completed() => {}
            Some(rec) => {
                return Err(format!(
                    "job {:016x} ({}) ended {} instead of completing",
                    hash,
                    job.name(),
                    rec.outcome.label()
                ));
            }
            None => return Err(format!("job {:016x} ({}) was lost", hash, job.name())),
        }
    }
    // Invariant: zero duplicated jobs — exactly one completion per
    // distinct spec hash regardless of resubmissions.
    let metrics = coord.metrics();
    let completed = metrics.counter("service_jobs_completed_total");
    if completed != basket.len() as u64 {
        return Err(format!(
            "expected exactly {} completions, counted {completed} — duplicate or phantom work",
            basket.len()
        ));
    }

    // The front-end must expose the registry under load.
    let (status, metrics_page) = http_request(&http_addr, "GET", "/metrics", None)?;
    if status != 200 || !metrics_page.contains("service_jobs_completed_total") {
        return Err(format!("/metrics scrape failed: status {status}"));
    }

    let http_errors = errors.load(Ordering::SeqCst);
    if http_errors > 0 {
        return Err(format!("{http_errors} HTTP submissions failed"));
    }

    let verify_export =
        if opts.verify { Some(verify_against_local_harness(&basket, &coord)?) } else { None };

    coord.shutdown();
    for h in worker_handles {
        let _ = h.join();
    }
    http.shutdown();

    let hist = latency.lock().expect("latency lock").clone();
    let q = |p: f64| Json::U64(hist.quantile_bound(p).unwrap_or(0));
    let mut pairs = vec![
        ("submissions", Json::U64(opts.submissions as u64)),
        ("clients", Json::U64(opts.clients as u64)),
        ("workers", Json::U64(opts.workers as u64)),
        ("basket", Json::U64(opts.basket as u64)),
        (
            "duplicate_submissions",
            Json::U64((opts.submissions - opts.basket.min(opts.submissions)) as u64),
        ),
        ("http_errors", Json::U64(http_errors as u64)),
        ("submit_wall_seconds", Json::F64(submit_wall)),
        ("total_wall_seconds", Json::F64(total_wall)),
        ("submissions_per_second", Json::F64(opts.submissions as f64 / submit_wall.max(1e-9))),
        (
            "submit_latency_us",
            Json::obj([
                ("p50", q(0.50)),
                ("p90", q(0.90)),
                ("p99", q(0.99)),
                ("max", Json::U64(hist.max())),
                ("mean", Json::F64(hist.mean().unwrap_or(0.0))),
                ("count", Json::U64(hist.count())),
            ]),
        ),
        (
            "counters",
            Json::obj([
                ("submissions_total", Json::U64(metrics.counter("service_submissions_total"))),
                (
                    "submissions_deduped_total",
                    Json::U64(metrics.counter("service_submissions_deduped_total")),
                ),
                (
                    "jobs_completed_total",
                    Json::U64(metrics.counter("service_jobs_completed_total")),
                ),
                ("jobs_failed_total", Json::U64(metrics.counter("service_jobs_failed_total"))),
                ("jobs_crashed_total", Json::U64(metrics.counter("service_jobs_crashed_total"))),
                (
                    "jobs_reassigned_total",
                    Json::U64(metrics.counter("service_jobs_reassigned_total")),
                ),
                ("jobs_stolen_total", Json::U64(metrics.counter("service_jobs_stolen_total"))),
                (
                    "duplicate_results_total",
                    Json::U64(metrics.counter("service_duplicate_results_total")),
                ),
            ]),
        ),
    ];
    if let Some(matched) = verify_export {
        pairs.push(("verified_against_local_harness", Json::Bool(matched)));
    }
    if let Some(kib) = peak_rss_kib() {
        pairs.push(("peak_rss_kib", Json::U64(kib)));
    }
    let bench = Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect());

    if let Some(path) = &opts.out {
        std::fs::write(path, format!("{}\n", bench.to_line()))
            .map_err(|e| format!("write {}: {e}", path.display()))?;
    }
    Ok(bench)
}

/// Runs the basket through the local `Harness` scheduler on a private
/// ledger and byte-compares the canonical exports. `Ok(true)` on a
/// match; an error (never `Ok(false)`) on divergence so callers can't
/// ignore it.
fn verify_against_local_harness(
    basket: &[ServiceJob],
    coord: &Coordinator,
) -> Result<bool, String> {
    let dir = std::env::temp_dir().join(format!("proteus-loadgen-{}", std::process::id()));
    std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
    let ledger = dir.join("verify-ledger.jsonl");
    let _ = std::fs::remove_file(&ledger);

    let jobs: Vec<JobSpec> = basket.iter().map(|j| JobSpec::new(j.name(), j.spec_hash())).collect();
    let harness = Harness::<Json>::new()
        .with_codec(PayloadCodec { encode: Json::clone, decode: |v| Some(v.clone()) });
    let opts = SweepOptions { workers: 2, ledger: Some(ledger.clone()), ..SweepOptions::default() };
    harness
        .run(&jobs, &opts, |i| basket[i].execute())
        .map_err(|e| format!("local verify sweep: {e}"))?;

    let local = LedgerSnapshot::load(&ledger).map_err(|e| e.to_string())?.canonical_export();
    let distributed = coord.canonical_export();
    let _ = std::fs::remove_file(&ledger);
    let _ = std::fs::remove_dir(&dir);
    if local.is_empty() {
        return Err("local verify sweep produced an empty export".to_string());
    }
    if local != distributed {
        return Err(format!(
            "distributed export diverges from local harness export ({} vs {} bytes)",
            distributed.len(),
            local.len()
        ));
    }
    Ok(true)
}

/// Peak resident set size from `/proc/self/status` (Linux only).
fn peak_rss_kib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            return rest.trim().trim_end_matches(" kB").trim().parse().ok();
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basket_jobs_are_distinct_and_mixed() {
        let basket = build_basket(12);
        let mut hashes: Vec<u64> = basket.iter().map(ServiceJob::spec_hash).collect();
        hashes.sort_unstable();
        hashes.dedup();
        assert_eq!(hashes.len(), 12, "spec hashes must be unique");
        assert!(basket.iter().any(|j| matches!(j, ServiceJob::Experiment(_))));
        assert!(basket.iter().any(|j| matches!(j, ServiceJob::Crash(_))));
        // At least one generated workload rides the wire codec.
        assert!(basket.iter().any(|j| matches!(
            j,
            ServiceJob::Experiment(spec)
                if matches!(spec.bench, proteus_workgen::WorkloadSel::Gen(_))
        )));
    }

    #[test]
    fn tiny_loadgen_end_to_end() {
        // Small but real: full boot, concurrent HTTP submissions with
        // duplicates, drain, dedup/loss assertions, verify pass.
        let opts = LoadgenOptions {
            submissions: 40,
            clients: 4,
            workers: 2,
            basket: 6,
            verify: true,
            out: None,
        };
        let bench = run_loadgen(&opts).expect("loadgen must pass");
        assert_eq!(
            bench.get("counters").unwrap().get("jobs_completed_total").unwrap().as_u64(),
            Some(6)
        );
        assert_eq!(bench.get("verified_against_local_harness").unwrap().as_bool(), Some(true));
        assert_eq!(bench.get("http_errors").unwrap().as_u64(), Some(0));
    }
}
