//! Counter/gauge/histogram registry behind the `/metrics` endpoint.
//!
//! A single process-wide registry shared by the coordinator, the HTTP
//! front-end, and the load generator. Histograms reuse
//! [`Log2Histogram`] — the same power-of-two bucketing the harness
//! already reports for job wall times — rendered in the conventional
//! cumulative `_bucket{le="..."}` text form so any scraper that speaks
//! the exposition format can read queue-wait, job-latency, and
//! frame-size distributions.
//!
//! Names are kept in `BTreeMap`s so the rendered page is stable and
//! diffable; all methods take `&self` (one mutex inside) so the
//! registry can be shared as a plain `Arc` across every thread of the
//! service.

use proteus_types::stats::Log2Histogram;
use std::collections::BTreeMap;
use std::sync::Mutex;

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, Log2Histogram>,
}

/// Shared metrics registry.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Adds `delta` to the counter `name`, creating it at zero.
    pub fn counter_add(&self, name: &str, delta: u64) {
        let mut inner = self.inner.lock().expect("metrics lock");
        let c = inner.counters.entry(name.to_string()).or_insert(0);
        *c = c.saturating_add(delta);
    }

    /// Current value of counter `name` (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner.lock().expect("metrics lock").counters.get(name).copied().unwrap_or(0)
    }

    /// Sets gauge `name` to `value`.
    pub fn gauge_set(&self, name: &str, value: i64) {
        self.inner.lock().expect("metrics lock").gauges.insert(name.to_string(), value);
    }

    /// Adds `delta` (possibly negative) to gauge `name`.
    pub fn gauge_add(&self, name: &str, delta: i64) {
        let mut inner = self.inner.lock().expect("metrics lock");
        let g = inner.gauges.entry(name.to_string()).or_insert(0);
        *g = g.saturating_add(delta);
    }

    /// Current value of gauge `name` (0 if never touched).
    pub fn gauge(&self, name: &str) -> i64 {
        self.inner.lock().expect("metrics lock").gauges.get(name).copied().unwrap_or(0)
    }

    /// Records `value` into histogram `name`, creating it if needed.
    pub fn observe(&self, name: &str, value: u64) {
        let mut inner = self.inner.lock().expect("metrics lock");
        inner.histograms.entry(name.to_string()).or_default().record(value);
    }

    /// A copy of histogram `name`, if it has ever been observed.
    pub fn histogram(&self, name: &str) -> Option<Log2Histogram> {
        self.inner.lock().expect("metrics lock").histograms.get(name).cloned()
    }

    /// Folds one run's cycle-engine phase wall times (DESIGN.md §11)
    /// into the standard `engine_*` counters, so `/metrics` scrapes and
    /// `reproduce bench --verbose` read the same accounting.
    pub fn record_engine_phases(&self, t: &proteus_sim::EnginePhaseTimes) {
        self.counter_add("engine_core_tick_ns_total", t.core_tick_ns);
        self.counter_add("engine_grant_wait_ns_total", t.grant_wait_ns);
        self.counter_add("engine_mc_drain_ns_total", t.mc_drain_ns);
        self.counter_add("engine_barrier_ns_total", t.barrier_ns);
        self.counter_add("engine_quanta_total", t.quanta);
        self.counter_add("engine_quantum_cycles_total", t.quantum_cycles);
        self.counter_add("engine_sequential_steps_total", t.sequential_steps);
    }

    /// Renders the whole registry in the text exposition format:
    /// `# TYPE` headers, plain counter/gauge samples, and cumulative
    /// `_bucket{le="..."}`/`_sum`/`_count` series per histogram.
    pub fn render(&self) -> String {
        let inner = self.inner.lock().expect("metrics lock");
        let mut out = String::new();
        for (name, value) in &inner.counters {
            out.push_str(&format!("# TYPE {name} counter\n{name} {value}\n"));
        }
        for (name, value) in &inner.gauges {
            out.push_str(&format!("# TYPE {name} gauge\n{name} {value}\n"));
        }
        for (name, hist) in &inner.histograms {
            out.push_str(&format!("# TYPE {name} histogram\n"));
            let mut cumulative = 0u64;
            for (i, &n) in hist.buckets().iter().enumerate() {
                if n == 0 {
                    continue;
                }
                cumulative += n;
                if i == Log2Histogram::BUCKETS - 1 {
                    // Open-ended top bucket folds into +Inf below.
                    continue;
                }
                let le = Log2Histogram::bucket_floor(i + 1) - 1;
                out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cumulative}\n"));
            }
            out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", hist.count()));
            out.push_str(&format!("{name}_sum {}\n", hist.sum()));
            out.push_str(&format!("{name}_count {}\n", hist.count()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_phase_counters_accumulate() {
        let reg = MetricsRegistry::new();
        let t = proteus_sim::EnginePhaseTimes {
            core_tick_ns: 5,
            grant_wait_ns: 2,
            mc_drain_ns: 3,
            barrier_ns: 4,
            quanta: 1,
            quantum_cycles: 100,
            sequential_steps: 7,
        };
        reg.record_engine_phases(&t);
        reg.record_engine_phases(&t);
        assert_eq!(reg.counter("engine_core_tick_ns_total"), 10);
        assert_eq!(reg.counter("engine_quanta_total"), 2);
        assert_eq!(reg.counter("engine_sequential_steps_total"), 14);
        assert!(reg.render().contains("engine_quantum_cycles_total 200"));
    }

    #[test]
    fn counters_and_gauges_accumulate() {
        let reg = MetricsRegistry::new();
        reg.counter_add("requests_total", 1);
        reg.counter_add("requests_total", 2);
        reg.gauge_set("queue_depth", 5);
        reg.gauge_add("queue_depth", -2);
        assert_eq!(reg.counter("requests_total"), 3);
        assert_eq!(reg.gauge("queue_depth"), 3);
        assert_eq!(reg.counter("never_touched"), 0);
        assert_eq!(reg.gauge("never_touched"), 0);
    }

    #[test]
    fn render_emits_cumulative_buckets() {
        let reg = MetricsRegistry::new();
        reg.counter_add("jobs_total", 7);
        reg.gauge_set("workers", 2);
        for v in [0, 3, 3, 100] {
            reg.observe("wait_ms", v);
        }
        let text = reg.render();
        assert!(text.contains("# TYPE jobs_total counter\njobs_total 7\n"), "{text}");
        assert!(text.contains("# TYPE workers gauge\nworkers 2\n"), "{text}");
        // 0 lands in [0], the 3s in [2-3], 100 in [64-127]; buckets are
        // cumulative.
        assert!(text.contains("wait_ms_bucket{le=\"0\"} 1\n"), "{text}");
        assert!(text.contains("wait_ms_bucket{le=\"3\"} 3\n"), "{text}");
        assert!(text.contains("wait_ms_bucket{le=\"127\"} 4\n"), "{text}");
        assert!(text.contains("wait_ms_bucket{le=\"+Inf\"} 4\n"), "{text}");
        assert!(text.contains("wait_ms_sum 106\n"), "{text}");
        assert!(text.contains("wait_ms_count 4\n"), "{text}");
    }

    #[test]
    fn render_is_sorted_and_stable() {
        let reg = MetricsRegistry::new();
        reg.counter_add("zeta", 1);
        reg.counter_add("alpha", 1);
        let text = reg.render();
        let a = text.find("alpha").unwrap();
        let z = text.find("zeta").unwrap();
        assert!(a < z, "BTreeMap ordering: {text}");
        assert_eq!(text, reg.render());
    }
}
