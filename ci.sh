#!/usr/bin/env bash
# Repository CI gate: build, tests, formatting, lints.
#
# This repo must build and test with NO crates.io access — some CI
# environments have neither network nor a vendored registry. The gate
# therefore runs everything through tools/offline-check.sh, which
# patches the external dependencies to the API-compatible stubs in
# tools/stubs/ via command-line `--config patch.crates-io.*` flags
# (the committed Cargo.toml is untouched; a networked build keeps
# using the real crates). Concretely it runs:
#
#   cargo build --release --offline --workspace
#   cargo test  -q        --offline --workspace  (lib/bin/example tests
#       plus the non-property integration tests; proptest suites and
#       Criterion benches need the real crates and are skipped offline)
#   end-to-end smokes: a bounded crashsweep/crashrepro round trip
#       (the roster's crash workloads: Table 2 rows plus the generated
#       ycsb-a/indexer presets), a bounded `reproduce contention` sweep
#       (the contended MQ/CH/LB workloads under every failure-safe
#       scheme, judged by the cross-thread commit-prefix oracle, with
#       the early_release lock-handoff fault caught, shrunk, and
#       replayed through crashrepro), a record->replay op-trace round trip
#       (`reproduce gen --workload indexer --file` then `reproduce
#       replay --file`, which fails unless the replayed workload and
#       every scheme's RunSummary are byte-identical to regenerating
#       from the trace header), a
#       tracedump run (self-validating: trace must reconcile with the
#       RunSummary and the Chrome JSON must parse with all tracks
#       populated), a `reproduce bench` run timing the cycle engine
#       with fast-forwarding on and off (fails on any output
#       divergence), a 2-worker-thread `reproduce bench` plus a
#       `reproduce bench-parallel` sweep smoking the parallel quantum
#       engine end to end through the CLI (each fails on any divergence
#       from the sequential reference), and a timeout-guarded `reproduce loadgen` run that
#       boots the distributed sweep service (coordinator + two loopback
#       workers + HTTP front-end) in-process, submits a sweep over
#       HTTP, scrapes /metrics, and byte-compares the distributed
#       results ledger against a single-process Harness run
#   the engine determinism suite twice: once normally and once with
#       --features paranoid, which single-steps every would-be skip and
#       asserts the machine state fingerprint never moves; the suite
#       pins fast-forwarding AND the parallel engine (2- and 4-worker
#       runs byte-identical to sequential across the whole
#       workload × scheme matrix, plus worker oversubscription)
#   scheme-registry gates: tools/lint-scheme-dispatch.sh (no per-scheme
#       dispatch outside crates/core/src/scheme/registry.rs), the
#       registry completeness suite (every registered scheme
#       round-trips the codec, runs all Table 2 workloads, recovers,
#       and survives a stratified crashsweep smoke), and the golden
#       pin (six seed schemes byte-identical against
#       crates/bench/tests/golden/fig6_seed_schemes.jsonl), and the
#       workgen pin (preset selector/content hashes, every preset on
#       every scheme, record->replay RunSummary byte-identity with
#       fast-forwarding on and off, a generated-preset crashsweep
#       smoke)
#   cargo fmt --check
#   cargo clippy --offline --workspace --lib --bins -- -D warnings
#
# With registry access, `cargo build --release && cargo test -q` on the
# plain workspace is the equivalent networked gate and additionally
# covers the proptest suites.
set -euo pipefail
cd "$(dirname "$0")"
exec tools/offline-check.sh all
