#!/usr/bin/env bash
# Run an arbitrary cargo command against the offline stubs, e.g.
#   tools/cargo-offline.sh test -q -p proteus-harness
# See tools/offline-check.sh for the full curated check.
set -euo pipefail
cd "$(dirname "$0")/.."
ROOT="$(pwd)"
STUBS=(serde serde_derive rand bytes proptest criterion)
PATCH_ARGS=()
for s in "${STUBS[@]}"; do
    PATCH_ARGS+=(--config "patch.crates-io.${s}.path='${ROOT}/tools/stubs/${s}'")
done
export CARGO_TARGET_DIR="${ROOT}/target-offline"
LOCK_BACKUP=""
if [[ -f Cargo.lock ]]; then
    LOCK_BACKUP="$(mktemp)"
    cp Cargo.lock "$LOCK_BACKUP"
fi
restore_lock() {
    if [[ -n "$LOCK_BACKUP" ]]; then mv "$LOCK_BACKUP" Cargo.lock; else rm -f Cargo.lock; fi
}
trap restore_lock EXIT
# Patch flags go after the subcommand so external subcommands (clippy)
# forward them to their inner cargo invocation.
SUB="$1"; shift
cargo "$SUB" "${PATCH_ARGS[@]}" "$@" --offline
