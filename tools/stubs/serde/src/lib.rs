//! Offline stub of `serde`.
//!
//! Provides just enough surface for this workspace to compile without
//! the real crate: the `Serialize`/`Deserialize` trait *names* (nothing
//! in the workspace calls serde serialisation at runtime) and the no-op
//! derive macros under the same names.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Stub of `serde::Serialize`; never implemented or required.
pub trait Serialize {}

/// Stub of `serde::Deserialize`; never implemented or required.
pub trait Deserialize<'de>: Sized {}
