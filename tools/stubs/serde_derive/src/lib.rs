//! Offline stub of `serde_derive`: the derives expand to nothing.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as
//! annotations (no code serialises through serde), so empty expansions
//! are enough to type-check and run everything that matters offline.
//! The derives register the `serde` helper attribute, exactly like the
//! real macros, so field attributes such as `skip_serializing_if`
//! type-check too.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
