//! Offline stub of `serde_derive`: the derives expand to nothing.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as
//! annotations (no code serialises through serde), so empty expansions
//! are enough to type-check and run everything that matters offline.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
