//! Offline stub of `proptest`: resolution-only placeholder.
//!
//! Property tests (`tests/prop_*.rs`, `crates/*/tests/prop_*.rs`) need
//! the real crate; the offline check skips those targets. Nothing in
//! any library crate depends on proptest.
