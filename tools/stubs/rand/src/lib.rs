//! Offline stub of `rand` 0.9 — functional, not just type-checking.
//!
//! The workspace draws randomness only through `StdRng::seed_from_u64`
//! plus `Rng::{random, random_range, random_bool}`; this stub backs
//! those with xoshiro256** seeded via splitmix64. Streams are
//! deterministic per seed but *different* from the real `rand` crate,
//! so absolute experiment numbers differ offline; every test in the
//! workspace asserts shapes or self-consistency, not golden values.

/// Concrete RNGs, mirroring `rand::rngs`.
pub mod rngs {
    /// xoshiro256** with a splitmix64 seeding sequence.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::StdRng;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Stub of `rand::SeedableRng` (only the `seed_from_u64` entry point).
pub trait SeedableRng: Sized {
    /// Seeds the generator from a single `u64`.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        StdRng { s: core::array::from_fn(|_| splitmix64(&mut sm)) }
    }
}

impl StdRng {
    fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }
}

/// Types producible by [`Rng::random`] in this stub.
pub trait FromRng {
    /// Builds a value from one raw 64-bit draw.
    fn from_raw(raw: u64) -> Self;
}

impl FromRng for u32 {
    fn from_raw(raw: u64) -> Self {
        (raw >> 32) as u32
    }
}

impl FromRng for u64 {
    fn from_raw(raw: u64) -> Self {
        raw
    }
}

/// Range types samplable by [`Rng::random_range`] in this stub.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Samples uniformly from the range given a raw 64-bit draw.
    fn sample(self, raw: u64) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample(self, raw: u64) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift uniform mapping (Lemire, biased by at
                // most span/2^64 — irrelevant for workload generation).
                let hi = ((raw as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
    )*};
}

impl_sample_range!(u64, u32, usize);

/// Stub of `rand::Rng` covering the methods this workspace calls.
pub trait Rng {
    /// One raw 64-bit draw.
    fn next_raw(&mut self) -> u64;

    /// Uniform value of `T`.
    fn random<T: FromRng>(&mut self) -> T {
        T::from_raw(self.next_raw())
    }

    /// Uniform value in `range` (half-open).
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self.next_raw())
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        (self.next_raw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl Rng for StdRng {
    fn next_raw(&mut self) -> u64 {
        self.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_raw(), b.next_raw());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_raw(), c.next_raw());
    }

    #[test]
    fn range_bounds_hold() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.random_range(10u64..20);
            assert!((10..20).contains(&v));
            let u = r.random_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn bool_probability_roughly_respected() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.random_bool(0.5)).count();
        assert!((4_000..6_000).contains(&hits), "got {hits}");
    }
}
