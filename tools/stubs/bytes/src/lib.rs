//! Offline stub of `bytes`: only `BytesMut::with_capacity`,
//! `BufMut::put_u64_le`, and `Buf::get_u64_le` on `&[u8]`, which is all
//! `proteus-core::entry` uses for the 64-byte log-entry wire format.

use std::ops::Deref;

/// Growable byte buffer (thin `Vec<u8>` wrapper).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer with `cap` bytes reserved.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { inner: Vec::with_capacity(cap) }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

/// Stub of `bytes::BufMut` (write side).
pub trait BufMut {
    /// Appends `v` in little-endian byte order.
    fn put_u64_le(&mut self, v: u64);
}

impl BufMut for BytesMut {
    fn put_u64_le(&mut self, v: u64) {
        self.inner.extend_from_slice(&v.to_le_bytes());
    }
}

/// Stub of `bytes::Buf` (read side).
pub trait Buf {
    /// Reads a little-endian `u64`, advancing the cursor.
    fn get_u64_le(&mut self) -> u64;
}

impl Buf for &[u8] {
    fn get_u64_le(&mut self) -> u64 {
        let (head, rest) = self.split_at(8);
        *self = rest;
        u64::from_le_bytes(head.try_into().expect("split_at(8) yields 8 bytes"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_roundtrip() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u64_le(0xDEAD_BEEF_0BAD_F00D);
        buf.put_u64_le(42);
        assert_eq!(buf.len(), 16);
        let mut r: &[u8] = buf.as_ref();
        assert_eq!(r.get_u64_le(), 0xDEAD_BEEF_0BAD_F00D);
        assert_eq!(r.get_u64_le(), 42);
        assert!(r.is_empty());
    }
}
