//! Offline stub of `criterion`: resolution-only placeholder.
//!
//! Criterion benches (`crates/bench/benches/`) need the real crate; the
//! offline check does not build bench targets.
