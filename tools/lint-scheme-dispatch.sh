#!/usr/bin/env bash
# Forbid per-scheme dispatch outside the scheme registry.
#
# Behavioural differences between logging schemes live in exactly one
# place: crates/core/src/scheme/registry.rs (the SchemeDescriptor
# table). Everything else — bench, sim, cpu, service, trace tooling —
# must consume descriptors (registry::descriptor / rosters) instead of
# re-matching LoggingSchemeKind. The only other sanctioned site is the
# enum's own identity impl in crates/types/src/config.rs (`label()`),
# which defines the stable report label the registry keys off.
#
# The check is grep-based on purpose: it catches `Variant =>` match
# arms, `== Variant` comparisons, and `matches!` probes in any file,
# including ones that do not compile yet. Adding a new scheme must not
# add a hit anywhere but the two sanctioned files.
#
# Usage: tools/lint-scheme-dispatch.sh   (exits non-zero on violations)

set -euo pipefail
cd "$(dirname "$0")/.."

ALLOWED=(
    "crates/core/src/scheme/registry.rs"
    "crates/types/src/config.rs"
)

# Variant uses that *dispatch* on the enum: match arms, equality
# probes, matches! macros. Plain constructor mentions
# (`LoggingSchemeKind::Proteus` as a value) are fine — passing a kind
# around is the whole point; branching on it is not.
PATTERN='LoggingSchemeKind::[A-Za-z_]+[[:space:]]*(=>|==)|==[[:space:]]*LoggingSchemeKind::|matches!\([^)]*LoggingSchemeKind::'

hits="$(grep -rnE --include='*.rs' "$PATTERN" crates/ tests/ 2>/dev/null || true)"
for allow in "${ALLOWED[@]}"; do
    hits="$(printf '%s' "$hits" | grep -v "^${allow}:" || true)"
done

if [[ -n "$hits" ]]; then
    echo "scheme-dispatch lint: per-scheme branching outside the registry:" >&2
    printf '%s\n' "$hits" >&2
    echo >&2
    echo "Move the behaviour into a SchemeDescriptor field/hook in" >&2
    echo "crates/core/src/scheme/registry.rs and consume it from there." >&2
    exit 1
fi
echo "scheme-dispatch lint passed (dispatch confined to the registry)" >&2
