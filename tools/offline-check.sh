#!/usr/bin/env bash
# Build and test the workspace WITHOUT a crates.io registry, using the
# API-compatible stub crates in tools/stubs/ (see tools/stubs/README.md).
#
# This exists because some build environments for this repo have no
# network and no vendored registry, so `cargo build` cannot resolve
# external dependencies at all. The stubs cover exactly the API surface
# the workspace uses (serde derives are annotations only, rand drives
# workload generation, bytes encodes log entries), so everything except
# the proptest property tests and Criterion benches builds and runs.
#
# The [patch] entries are injected on the command line only — the
# committed Cargo.toml is untouched, and a networked `cargo build`
# keeps using the real crates. The Cargo.lock produced against stubs is
# removed afterwards (or the pre-existing one restored) so it can never
# leak into a networked build.
#
# Usage: tools/offline-check.sh [build|test|clippy|fmt|lint|all]   (default: all)

set -euo pipefail
cd "$(dirname "$0")/.."
ROOT="$(pwd)"
MODE="${1:-all}"

STUBS=(serde serde_derive rand bytes proptest criterion)
PATCH_ARGS=()
for s in "${STUBS[@]}"; do
    PATCH_ARGS+=(--config "patch.crates-io.${s}.path='${ROOT}/tools/stubs/${s}'")
done

# Keep stub artifacts out of the normal target dir and keep the normal
# lockfile (if any) out of the stub resolution.
export CARGO_TARGET_DIR="${ROOT}/target-offline"
LOCK_BACKUP=""
if [[ -f Cargo.lock ]]; then
    LOCK_BACKUP="$(mktemp)"
    cp Cargo.lock "$LOCK_BACKUP"
fi
restore_lock() {
    if [[ -n "$LOCK_BACKUP" ]]; then
        mv "$LOCK_BACKUP" Cargo.lock
    else
        rm -f Cargo.lock
    fi
}
trap restore_lock EXIT

run() { echo "+ $*" >&2; "$@"; }

do_build() {
    run cargo "${PATCH_ARGS[@]}" build --release --offline --workspace
}

do_test() {
    # Everything except proptest-based integration tests (need the real
    # proptest) and Criterion benches (need the real criterion):
    # unit tests, bins, examples, and the non-property integration tests.
    run cargo "${PATCH_ARGS[@]}" test -q --offline --workspace --lib --bins --examples
    for t in integration_system integration_recovery integration_experiments integration_harness integration_trace integration_fastforward; do
        run cargo "${PATCH_ARGS[@]}" test -q --offline -p proteus-sim --test "$t"
    done
    run cargo "${PATCH_ARGS[@]}" test -q --offline -p proteus-harness --test harness_resume
    run cargo "${PATCH_ARGS[@]}" test -q --offline --release -p proteus-bench --test golden_pin
    run cargo "${PATCH_ARGS[@]}" test -q --offline --release -p proteus-bench --test registry_completeness
    run cargo "${PATCH_ARGS[@]}" test -q --offline --release -p proteus-bench --test workgen_pin
    run cargo "${PATCH_ARGS[@]}" test -q --offline -p proteus-cpu --test pipeline
    run cargo "${PATCH_ARGS[@]}" test -q --offline -p proteus-crash --test integration_crash
    run cargo "${PATCH_ARGS[@]}" test -q --offline -p proteus-service --test integration_service
    # Paranoid engine cross-check: re-run the fast-forward determinism
    # suite with every skip single-stepped under fingerprint assertions.
    run cargo "${PATCH_ARGS[@]}" test -q --offline -p proteus-sim --features paranoid --test integration_fastforward
    # Smoke the crash-point sweep end to end (bounded workload sizes):
    # explores the roster's crash workloads — Table 2 rows AND the
    # generated ycsb-a/indexer presets — under every failure-safe
    # scheme, and self-validates the checker against the
    # disable_persist_ordering fault knob.
    run cargo "${PATCH_ARGS[@]}" run -q --release --offline -p proteus-bench --bin reproduce -- \
        crashsweep --scale 0.02 --file "${CARGO_TARGET_DIR}/smoke_crash_repro.json"
    run cargo "${PATCH_ARGS[@]}" run -q --release --offline -p proteus-bench --bin reproduce -- \
        crashrepro --file "${CARGO_TARGET_DIR}/smoke_crash_repro.json"
    # Smoke the contended axis: the three shared-structure workloads
    # (MPMC queue, contended hash maps, lock-coupled B-trees) under
    # every failure-safe scheme, judged by the cross-thread
    # commit-prefix oracle, plus the early_release lock-handoff
    # self-test (caught, shrunk, replayed).
    run cargo "${PATCH_ARGS[@]}" run -q --release --offline -p proteus-bench --bin reproduce -- \
        contention --scale 0.02 --file "${CARGO_TARGET_DIR}/smoke_contention_repro.json"
    run cargo "${PATCH_ARGS[@]}" run -q --release --offline -p proteus-bench --bin reproduce -- \
        crashrepro --file "${CARGO_TARGET_DIR}/smoke_contention_repro.json"
    # Smoke the op-trace pipeline end to end: record a generated preset
    # to a trace file, then replay it — `replay` exits non-zero unless
    # the replayed workload and every scheme's RunSummary are
    # byte-identical to regenerating from the trace header.
    run cargo "${PATCH_ARGS[@]}" run -q --release --offline -p proteus-bench --bin reproduce -- \
        gen --workload indexer --scale 0.01 --file "${CARGO_TARGET_DIR}/smoke_optrace.jsonl"
    [[ -s "${CARGO_TARGET_DIR}/smoke_optrace.jsonl" ]] || {
        echo "gen smoke produced an empty op trace" >&2
        exit 1
    }
    run cargo "${PATCH_ARGS[@]}" run -q --release --offline -p proteus-bench --bin reproduce -- \
        replay --file "${CARGO_TARGET_DIR}/smoke_optrace.jsonl"
    # Smoke the cycle-level tracer end to end: tracedump exits non-zero
    # unless the trace reconciles (±0) with the RunSummary, the emitted
    # Chrome JSON parses, and every core and MC queue track carries at
    # least one event. Independently require a non-trivial artifact.
    run cargo "${PATCH_ARGS[@]}" run -q --release --offline -p proteus-bench --bin tracedump -- \
        qe --scale 0.02 --out "${CARGO_TARGET_DIR}/smoke_trace.json"
    [[ -s "${CARGO_TARGET_DIR}/smoke_trace.json" ]] || {
        echo "tracedump smoke produced an empty Chrome trace" >&2
        exit 1
    }
    # Smoke the cycle-engine benchmark: times the fixed basket with
    # fast-forwarding on and off and fails if the outputs diverge.
    run cargo "${PATCH_ARGS[@]}" run -q --release --offline -p proteus-bench --bin reproduce -- \
        bench --scale 0.02 --file "${CARGO_TARGET_DIR}/smoke_bench.json"
    [[ -s "${CARGO_TARGET_DIR}/smoke_bench.json" ]] || {
        echo "bench smoke produced an empty report" >&2
        exit 1
    }
    # Smoke the parallel quantum engine through the CLI: the same bench
    # basket on 2 worker threads (cross-checked against sequential
    # fast-forward results inside `bench` itself), then the dedicated
    # 1/2/4-thread byte-identity sweep. The full workload × scheme
    # parallel identity matrix already ran above, inside
    # integration_fastforward (normal and paranoid builds).
    run cargo "${PATCH_ARGS[@]}" run -q --release --offline -p proteus-bench --bin reproduce -- \
        bench --scale 0.02 --engine-threads 2 --file "${CARGO_TARGET_DIR}/smoke_bench_t2.json"
    run cargo "${PATCH_ARGS[@]}" run -q --release --offline -p proteus-bench --bin reproduce -- \
        bench-parallel --scale 0.02 --file "${CARGO_TARGET_DIR}/smoke_bench_parallel.json"
    [[ -s "${CARGO_TARGET_DIR}/smoke_bench_parallel.json" ]] || {
        echo "bench-parallel smoke produced an empty report" >&2
        exit 1
    }
    # Smoke the distributed sweep service end to end: boots a
    # coordinator, an HTTP front-end, and two loopback workers
    # in-process, submits a duplicate-heavy sweep over HTTP, scrapes
    # /metrics, and (--verify) byte-compares the distributed results
    # ledger against the same sweep run through the local Harness.
    # Exits non-zero on any lost/duplicated job or export divergence;
    # the timeout guards against a wedged coordinator hanging CI.
    run timeout 300 cargo "${PATCH_ARGS[@]}" run -q --release --offline -p proteus-bench --bin reproduce -- \
        loadgen --submissions 200 --clients 8 --workers 2 --basket 12 --verify \
        --file "${CARGO_TARGET_DIR}/smoke_service.json"
    [[ -s "${CARGO_TARGET_DIR}/smoke_service.json" ]] || {
        echo "service smoke produced an empty report" >&2
        exit 1
    }
}

do_clippy() {
    if cargo clippy --version >/dev/null 2>&1; then
        # The patch flags must come AFTER the subcommand: `cargo clippy`
        # re-invokes `cargo check` with only the subcommand's own args,
        # so flags consumed by the outer cargo never reach resolution.
        run cargo clippy "${PATCH_ARGS[@]}" --offline --workspace --lib --bins -- -D warnings
    else
        echo "clippy not installed; skipping" >&2
    fi
}

do_fmt() {
    if cargo fmt --version >/dev/null 2>&1; then
        run cargo fmt --check
    else
        echo "rustfmt not installed; skipping" >&2
    fi
}

do_lint() {
    # Scheme dispatch must stay confined to the registry (DESIGN.md §8).
    run tools/lint-scheme-dispatch.sh
}

case "$MODE" in
    build)  do_build ;;
    test)   do_test ;;
    clippy) do_clippy ;;
    fmt)    do_fmt ;;
    lint)   do_lint ;;
    all)    do_lint; do_build; do_test; do_clippy; do_fmt ;;
    *) echo "usage: $0 [build|test|clippy|fmt|lint|all]" >&2; exit 2 ;;
esac
echo "offline check ($MODE) passed" >&2
