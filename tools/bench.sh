#!/usr/bin/env bash
# Times the cycle engine on the roster's bench basket (QE/HM/SS, the
# generated ycsb-a preset, and the contended MQ/CH/LB workloads, under
# the registry's bench-basket schemes — PMEM+pcommit, ATOM, Proteus,
# InCLL) with event-driven fast-forwarding on and off, writing
# BENCH_cycle_engine.json at the repo root. Each row also reports the
# run's coherence-miss and invalidation counters (zero for every
# single-owner workload). Both axes are table-driven: the scheme list
# comes from `registry::bench_basket()`, the workload list from
# `workgen::roster::bench_basket()`; flipping `bench_basket: true` on
# a scheme or a workload descriptor adds its rows with no script
# change.
#
# The underlying `reproduce bench` command cross-checks every pair of
# runs: if fast-forwarding changes any simulated outcome, the benchmark
# fails. Numbers from this script are recorded in EXPERIMENTS.md.
#
# Usage: tools/bench.sh [--scale S] [--threads N] [--engine-threads N]
#                        [--verbose] [--file PATH]
#   (defaults: scale 0.1, threads 4, engine-threads 1,
#    file BENCH_cycle_engine.json)
#
# `--engine-threads N` runs every simulation on the parallel quantum
# engine (DESIGN.md §11) with N worker threads; results are
# byte-identical, only wall clocks move. `--verbose` appends the
# engine's per-phase wall-time counters to the report.
#
# A third mode sweeps the engine thread axis itself:
#
#   tools/bench.sh parallel [--scale S] [--file PATH]
#
# which times the same basket plus the contended workloads at 1, 2, and
# 4 engine threads, asserts byte-identity against the sequential
# reference, and writes BENCH_parallel.json.
#
# A second mode benchmarks the distributed sweep service instead:
#
#   tools/bench.sh service [--submissions N] [--clients C] [--workers W]
#                          [--basket B] [--verify] [--file PATH]
#
# which boots coordinator + workers + HTTP front-end in-process, fires
# the submissions concurrently over loopback HTTP, and writes
# BENCH_service.json (throughput, submit-latency quantiles, dedup and
# reassignment counters). It exits non-zero if any job is lost or
# duplicated, or — with --verify — if the distributed results ledger
# differs by even one byte from a single-process Harness run.
#
# Builds offline via the stub registry (tools/offline-check.sh
# conventions); with crates.io access a plain
#   cargo run --release -p proteus-bench --bin reproduce -- bench
# is equivalent.

set -euo pipefail
cd "$(dirname "$0")/.."
ROOT="$(pwd)"

STUBS=(serde serde_derive rand bytes proptest criterion)
PATCH_ARGS=()
for s in "${STUBS[@]}"; do
    PATCH_ARGS+=(--config "patch.crates-io.${s}.path='${ROOT}/tools/stubs/${s}'")
done

export CARGO_TARGET_DIR="${ROOT}/target-offline"
LOCK_BACKUP=""
if [[ -f Cargo.lock ]]; then
    LOCK_BACKUP="$(mktemp)"
    cp Cargo.lock "$LOCK_BACKUP"
fi
restore_lock() {
    if [[ -n "$LOCK_BACKUP" ]]; then
        mv "$LOCK_BACKUP" Cargo.lock
    else
        rm -f Cargo.lock
    fi
}
trap restore_lock EXIT

MODE="bench"
if [[ "${1:-}" == "parallel" ]]; then
    MODE="bench-parallel"
    shift
elif [[ "${1:-}" == "service" ]]; then
    MODE="loadgen"
    shift
    # Defaults sized for a real measurement run; override freely.
    if [[ "$*" != *--submissions* ]]; then
        set -- --submissions 2000 --clients 16 --workers 4 --basket 32 --verify "$@"
    fi
fi

cargo "${PATCH_ARGS[@]}" run -q --release --offline -p proteus-bench --bin reproduce -- \
    "$MODE" "$@"
