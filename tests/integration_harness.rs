//! End-to-end harness orchestration over real experiments: a sweep
//! with one crash-injected experiment completes its siblings, records
//! the crash in the resume ledger, and a resumed invocation re-runs
//! only the failed job — the workflow `reproduce --resume` exposes.

use proteus_harness::json::{self, Json};
use proteus_harness::SweepOptions;
use proteus_sim::runner::{run_many_report, run_many_with, ExperimentSpec};
use proteus_types::config::{EngineConfig, LoggingSchemeKind, SystemConfig};
use proteus_types::{JobOutcome, SimError};
use proteus_workloads::{Benchmark, WorkloadParams};
use std::path::PathBuf;

fn temp_file(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("proteus-sim-it-{tag}-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

fn tiny_spec(bench: Benchmark, scheme: LoggingSchemeKind) -> ExperimentSpec {
    let params =
        WorkloadParams { threads: 2, init_ops: 40, sim_ops: 10, seed: 0 }.with_derived_seed(bench);
    ExperimentSpec {
        config: SystemConfig::skylake_like().with_num_cores(2),
        scheme,
        bench: bench.into(),
        params,
        engine: EngineConfig::default(),
    }
}

/// Passes `validate()` but panics in the cache model (96 sets is not a
/// power of two): a crash the harness must isolate.
fn crashing_spec() -> ExperimentSpec {
    let mut spec = tiny_spec(Benchmark::StringSwap, LoggingSchemeKind::NoLog);
    spec.config.caches.l1d.size_bytes = 48 * 1024;
    spec.config.caches.l1d.ways = 8;
    assert!(spec.config.validate().is_ok());
    spec
}

#[test]
fn crash_isolated_ledgered_and_resumed() {
    let ledger = temp_file("resume");
    let events = temp_file("events");
    let specs = vec![
        tiny_spec(Benchmark::Queue, LoggingSchemeKind::Proteus),
        tiny_spec(Benchmark::Queue, LoggingSchemeKind::SwPmem),
        crashing_spec(),
        tiny_spec(Benchmark::HashMap, LoggingSchemeKind::Proteus),
    ];
    let opts = SweepOptions {
        workers: 2,
        max_retries: 0,
        ledger: Some(ledger.clone()),
        events: Some(events.clone()),
        ..SweepOptions::default()
    };

    // Sweep one: the injected crash must not take down its siblings.
    let report = run_many_report(&specs, &opts).expect("sweep infrastructure");
    assert_eq!(report.completed, 3, "siblings of the crash completed");
    assert_eq!(report.crashed, 1);
    assert!(matches!(report.results[2].outcome, JobOutcome::Crashed { .. }));
    let sibling_cycles = report.results[3].payload.as_ref().unwrap().summary.total_cycles;
    assert!(sibling_cycles > 0);

    // The crash is durable in the ledger, keyed by the spec hash.
    let text = std::fs::read_to_string(&ledger).unwrap();
    let crashed: Vec<Json> = text
        .lines()
        .map(|l| json::parse(l).expect("ledger line parses"))
        .filter(|v| v.get("outcome").and_then(Json::as_str) == Some("crashed"))
        .collect();
    assert_eq!(crashed.len(), 1);
    assert_eq!(
        crashed[0].get("spec_hash").and_then(Json::as_str),
        Some(format!("{:016x}", specs[2].spec_hash()).as_str())
    );
    assert!(crashed[0].get("message").and_then(Json::as_str).unwrap().contains("power of two"));

    // Sweep two (--resume): fix the config; only the crashed job runs.
    let mut fixed = specs.clone();
    fixed[2] = tiny_spec(Benchmark::StringSwap, LoggingSchemeKind::NoLog);
    let resumed = run_many_report(&fixed, &opts).expect("resumed sweep");
    assert_eq!(resumed.executed, 1, "exactly the failed job re-ran");
    assert_eq!(resumed.resumed, 3);
    assert!(resumed.is_all_completed());
    // Restored results carry real payloads, not placeholders.
    assert_eq!(resumed.results[3].payload.as_ref().unwrap().summary.total_cycles, sibling_cycles);

    // The event stream narrates both sweeps with per-job metrics.
    let ev = std::fs::read_to_string(&events).unwrap();
    let parsed: Vec<Json> = ev.lines().map(|l| json::parse(l).unwrap()).collect();
    let count = |k: &str| {
        parsed.iter().filter(|v| v.get("event").and_then(Json::as_str) == Some(k)).count()
    };
    assert_eq!(count("sweep-start"), 2);
    assert_eq!(count("job-end"), 5, "4 executions in sweep one + 1 in sweep two");
    assert_eq!(count("job-resumed"), 3);
    let cycles_metrics: Vec<u64> = parsed
        .iter()
        .filter(|v| v.get("event").and_then(Json::as_str) == Some("job-end"))
        .filter(|v| v.get("outcome").and_then(Json::as_str) == Some("completed"))
        .map(|v| v.get("metric").unwrap().as_u64().unwrap())
        .collect();
    assert_eq!(cycles_metrics.len(), 4);
    assert!(cycles_metrics.iter().all(|&c| c > 0), "completed jobs report simulated cycles");

    std::fs::remove_file(&ledger).unwrap();
    std::fs::remove_file(&events).unwrap();
}

/// The all-or-nothing entry point, driven through a ledger: the first
/// invocation fails with a typed `WorkerPanic`, the second (after the
/// fix) resumes the completed jobs and succeeds.
#[test]
fn run_many_with_resume_recovers_from_crash() {
    let ledger = temp_file("allornothing");
    let specs = vec![tiny_spec(Benchmark::Queue, LoggingSchemeKind::NoLog), crashing_spec()];
    let opts = SweepOptions {
        workers: 2,
        max_retries: 0,
        ledger: Some(ledger.clone()),
        ..SweepOptions::default()
    };
    let err = run_many_with(&specs, &opts).unwrap_err();
    assert!(matches!(err, SimError::WorkerPanic { .. }), "{err}");

    let fixed = vec![specs[0].clone(), tiny_spec(Benchmark::StringSwap, LoggingSchemeKind::NoLog)];
    let results = run_many_with(&fixed, &opts).expect("fixed sweep succeeds");
    assert_eq!(results.len(), 2);
    assert!(results.iter().all(|r| r.summary.total_cycles > 0));
    std::fs::remove_file(&ledger).unwrap();
}

/// Resume is keyed by the structural spec hash: any change to the
/// experiment (scheme, ops, config) re-runs it; an identical spec does
/// not.
#[test]
fn ledger_keys_track_spec_changes() {
    let ledger = temp_file("keys");
    let opts = SweepOptions { workers: 1, ledger: Some(ledger.clone()), ..SweepOptions::default() };
    let base = vec![tiny_spec(Benchmark::Queue, LoggingSchemeKind::Proteus)];
    let first = run_many_report(&base, &opts).unwrap();
    assert_eq!(first.executed, 1);

    // Identical spec: resumed.
    let again = run_many_report(&base, &opts).unwrap();
    assert_eq!(again.executed, 0);
    assert_eq!(again.resumed, 1);

    // One more sim op: a different experiment, so it runs.
    let mut changed = base.clone();
    changed[0].params.sim_ops += 1;
    let third = run_many_report(&changed, &opts).unwrap();
    assert_eq!(third.executed, 1);
    std::fs::remove_file(&ledger).unwrap();
}
