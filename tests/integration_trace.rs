//! Cross-crate integration for the tracing subsystem: zero-cost-when-
//! disabled guarantees, trace/summary consistency, and bounded-ring
//! overflow semantics on a real Table-2 workload.

use proteus_sim::System;
use proteus_trace::TrackKind;
use proteus_types::config::{LoggingSchemeKind, SystemConfig, TraceConfig};
use proteus_workloads::{generate, Benchmark, GeneratedWorkload, WorkloadParams};

fn table2_queue() -> GeneratedWorkload {
    let params =
        WorkloadParams::table2(Benchmark::Queue, 2, 0.01).with_derived_seed(Benchmark::Queue);
    generate(Benchmark::Queue, &params)
}

fn config() -> SystemConfig {
    SystemConfig::skylake_like().with_num_cores(2).with_cache_divisor(64)
}

/// Disabled tracing must allocate no buffers and produce no report, and
/// the run must be indistinguishable from a plain `System::new` run:
/// observability is opt-in, never a tax.
#[test]
fn disabled_tracing_allocates_nothing_and_changes_nothing() {
    let workload = table2_queue();
    let mut plain = System::new(&config(), LoggingSchemeKind::Proteus, &workload).unwrap();
    let baseline = plain.run().unwrap();

    let mut traced = System::new_with_trace(
        &config(),
        LoggingSchemeKind::Proteus,
        &workload,
        &TraceConfig::disabled(),
    )
    .unwrap();
    assert_eq!(traced.trace_capacity(), 0, "disabled tracing must allocate no event storage");
    let summary = traced.run().unwrap();
    assert!(traced.take_trace_report().is_none(), "disabled tracing must yield no report");
    assert_eq!(summary, baseline, "tracing plumbing must not perturb the simulation");
}

/// Enabling tracing is pure observation: the `RunSummary` must be
/// identical to the untraced run, and the report must reconcile with it
/// exactly (±0) via `check_against`.
#[test]
fn enabled_tracing_observes_without_perturbing() {
    let workload = table2_queue();
    let mut plain = System::new(&config(), LoggingSchemeKind::Proteus, &workload).unwrap();
    let baseline = plain.run().unwrap();

    let mut traced = System::new_with_trace(
        &config(),
        LoggingSchemeKind::Proteus,
        &workload,
        &TraceConfig::enabled(),
    )
    .unwrap();
    assert!(traced.trace_capacity() > 0);
    let summary = traced.run().unwrap();
    assert_eq!(summary, baseline, "tracing must be invisible to the simulated machine");

    let report = traced.take_trace_report().expect("enabled tracing must yield a report");
    report.check_against(&summary).expect("trace must reconcile with RunSummary");
    assert!(report.total_events() > 0);
    // Every core committed transactions, so every core track must carry
    // per-transaction critical-path records.
    for (i, _) in workload.programs.iter().enumerate() {
        let track = report.track(TrackKind::Core(i as u32)).expect("core track present");
        assert!(!track.events.is_empty(), "core{i} track must carry events");
        assert!(!track.tx_records.is_empty(), "core{i} must record tx critical paths");
    }
    let mc = report.track(TrackKind::Mc).expect("MC track present");
    assert!(!mc.occupancy.is_empty(), "MC must sample queue occupancy");
}

/// A deliberately tiny ring must overflow, keep only the newest events,
/// and surface the loss in `dropped_oldest` rather than hiding it.
#[test]
fn tiny_ring_overflow_is_counted_not_silent() {
    let workload = table2_queue();
    let trace = TraceConfig { enabled: true, ring_capacity: 16, sample_interval: 64 };
    let mut system =
        System::new_with_trace(&config(), LoggingSchemeKind::Proteus, &workload, &trace).unwrap();
    system.run().unwrap();
    let report = system.take_trace_report().expect("report");
    assert!(report.total_dropped() > 0, "a 16-entry ring must overflow on a Table-2 run");
    for track in &report.tracks {
        assert!(
            track.events.len() <= trace.ring_capacity,
            "{:?}: retained {} events > capacity {}",
            track.kind,
            track.events.len(),
            trace.ring_capacity
        );
    }
}

/// An enabled config with a zero ring or sampling period is a user
/// error, and `System::new_with_trace` must refuse it up front.
#[test]
fn invalid_trace_config_is_rejected() {
    let workload = table2_queue();
    let bad = TraceConfig { enabled: true, ring_capacity: 0, sample_interval: 64 };
    assert!(System::new_with_trace(&config(), LoggingSchemeKind::Proteus, &workload, &bad).is_err());
    let bad = TraceConfig { enabled: true, ring_capacity: 16, sample_interval: 0 };
    assert!(System::new_with_trace(&config(), LoggingSchemeKind::Proteus, &workload, &bad).is_err());
}
