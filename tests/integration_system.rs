//! Cross-crate integration: workload generation → trace expansion →
//! full-system simulation → functional correctness of the durable state.

use proteus_sim::System;
use proteus_types::config::{LoggingSchemeKind, SystemConfig};
use proteus_workloads::{generate, thread_arena, Benchmark, GeneratedWorkload, WorkloadParams};

fn small(bench: Benchmark) -> GeneratedWorkload {
    generate(bench, &WorkloadParams { threads: 2, init_ops: 120, sim_ops: 25, seed: 77 })
}

fn config() -> SystemConfig {
    SystemConfig::skylake_like().with_num_cores(2)
}

/// The durable image after a completed run must equal the functional
/// application of every program, across all benchmarks and all schemes.
#[test]
fn final_state_matches_functional_semantics_everywhere() {
    for bench in Benchmark::TABLE2 {
        let workload = small(bench);
        let mut expected = workload.initial_image.clone();
        for p in &workload.programs {
            p.apply_functionally(&mut expected);
        }
        for scheme in LoggingSchemeKind::ALL {
            let mut system = System::new(&config(), scheme, &workload).unwrap();
            let summary = system.run().unwrap();
            assert!(summary.total_cycles > 0);
            let image = system.crash_image();
            // Compare only data arenas (log areas and logFlag words are
            // scheme-private).
            for p in &workload.programs {
                let (lo, hi) = thread_arena(p.thread);
                let torn: Vec<_> =
                    image.diff(&expected).into_iter().filter(|a| *a >= lo && *a < hi).collect();
                assert!(torn.is_empty(), "{bench:?}/{scheme:?}: final data mismatch at {torn:?}");
            }
        }
    }
}

/// The paper's headline ordering must hold on every benchmark, even at
/// test scale: pcommit < baseline ≤ hardware schemes ≤ no logging.
#[test]
fn scheme_ordering_holds_per_benchmark() {
    for bench in [Benchmark::Queue, Benchmark::AvlTree, Benchmark::StringSwap] {
        let workload = small(bench);
        let cycles = |scheme| {
            let mut system = System::new(&config(), scheme, &workload).unwrap();
            system.run().unwrap().total_cycles
        };
        let pcommit = cycles(LoggingSchemeKind::SwPmemPcommit);
        let sw = cycles(LoggingSchemeKind::SwPmem);
        let proteus = cycles(LoggingSchemeKind::Proteus);
        assert!(pcommit > sw, "{bench:?}: ADR must beat pcommit ({pcommit} <= {sw})");
        assert!(sw > proteus, "{bench:?}: Proteus must beat SW logging ({sw} <= {proteus})");
    }
}

/// Transactions retired must equal transactions generated, per core.
#[test]
fn transaction_accounting() {
    let workload = small(Benchmark::HashMap);
    for scheme in [LoggingSchemeKind::Proteus, LoggingSchemeKind::Atom] {
        let mut system = System::new(&config(), scheme, &workload).unwrap();
        let summary = system.run().unwrap();
        assert_eq!(
            summary.cores_merged().transactions,
            workload.total_transactions(),
            "{scheme:?}"
        );
    }
}

/// Proteus must drop (flash clear) the overwhelming majority of its log
/// writes; ATOM must not.
#[test]
fn log_write_removal_separates_proteus_from_atom() {
    let workload = small(Benchmark::HashMap);
    let run = |scheme| {
        let mut system = System::new(&config(), scheme, &workload).unwrap();
        system.run().unwrap()
    };
    let proteus = run(LoggingSchemeKind::Proteus);
    assert!(proteus.mem.lpq_flash_cleared > 0, "flash clearing never fired");
    assert!(
        proteus.mem.nvmm_log_writes <= proteus.mem.lpq_flash_cleared / 4,
        "most Proteus log entries must never reach NVMM: {:?}",
        proteus.mem
    );
    let atom = run(LoggingSchemeKind::Atom);
    let atom_log_traffic = atom.mem.nvmm_log_writes + atom.mem.nvmm_log_invalidation_writes;
    assert!(
        atom_log_traffic > proteus.mem.nvmm_log_writes,
        "ATOM must write more log traffic: {atom_log_traffic} vs {}",
        proteus.mem.nvmm_log_writes
    );
}

/// The LLT must elide repeated grain logging in real workloads.
#[test]
fn llt_hits_on_real_workloads() {
    let workload = small(Benchmark::StringSwap);
    let mut system = System::new(&config(), LoggingSchemeKind::Proteus, &workload).unwrap();
    let summary = system.run().unwrap();
    let cores = summary.cores_merged();
    assert!(cores.llt_lookups > 0);
    assert!(cores.llt_hits > 0, "string swaps write 4 words per grain; the LLT must hit");
    let miss_rate = cores.llt_miss_rate_pct().unwrap();
    assert!((1.0..90.0).contains(&miss_rate), "SS miss rate {miss_rate}% outside plausible band");
}

/// A five-scheme sweep on one workload must keep per-scheme uop counts
/// consistent with the instruction-overhead story of Fig. 3.
#[test]
fn instruction_overhead_story() {
    let workload = small(Benchmark::BTree);
    let uops = |scheme| {
        let mut system = System::new(&config(), scheme, &workload).unwrap();
        system.run().unwrap().cores_merged().uops_retired
    };
    let sw = uops(LoggingSchemeKind::SwPmem);
    let atom = uops(LoggingSchemeKind::Atom);
    let proteus = uops(LoggingSchemeKind::Proteus);
    let nolog = uops(LoggingSchemeKind::NoLog);
    // ATOM adds no *logging* instructions — only the tx-begin/tx-end
    // markers (one more per transaction than nolog's single sfence).
    assert_eq!(
        atom,
        nolog + workload.total_transactions(),
        "ATOM must add exactly the transaction markers"
    );
    assert!(proteus > nolog, "Proteus adds log-load/log-flush pairs");
    assert!(sw > proteus, "software logging adds far more");
}
