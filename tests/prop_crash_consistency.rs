//! Property-based crash-consistency testing: for random workloads,
//! schemes, and crash points, recovery must always land on a
//! transaction-consistent state.
//!
//! The systematic explorer (`integration_crash.rs`) walks persist-event
//! indices; these properties attack from the other side with randomised
//! cycle-fraction crash points and randomised workload seeds, both
//! judged by the shared [`ConsistencyOracle`].

use proptest::prelude::*;
use proteus_crash::{ConsistencyOracle, ExploreSpec, FaultSpec};
use proteus_sim::System;
use proteus_types::config::{LoggingSchemeKind, SystemConfig};
use proteus_workloads::{generate, Benchmark, WorkloadParams};

fn bench_strategy() -> impl Strategy<Value = Benchmark> {
    prop_oneof![
        Just(Benchmark::Queue),
        Just(Benchmark::HashMap),
        Just(Benchmark::AvlTree),
        Just(Benchmark::BTree),
        Just(Benchmark::RbTree),
    ]
}

fn scheme_strategy() -> impl Strategy<Value = LoggingSchemeKind> {
    prop_oneof![
        Just(LoggingSchemeKind::SwPmem),
        Just(LoggingSchemeKind::Atom),
        Just(LoggingSchemeKind::Proteus),
        Just(LoggingSchemeKind::ProteusNoLwr),
    ]
}

fn fault_strategy() -> impl Strategy<Value = FaultSpec> {
    // Only consistency-preserving faults: torn in-service lines are
    // masked by the ADR drain, dropped in-flight requests are the clean
    // model by construction.
    prop_oneof![
        Just(FaultSpec::Clean),
        (1u8..=255).prop_map(|mask| FaultSpec::TornLine { mask }),
        Just(FaultSpec::DroppedInFlight),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        max_shrink_iters: 16,
        .. ProptestConfig::default()
    })]

    /// Crash anywhere, under any failure-safe scheme and any
    /// consistency-preserving fault model, on any benchmark: after
    /// recovery every thread's data is a per-transaction prefix of its
    /// program.
    #[test]
    fn recovery_always_lands_on_a_transaction_boundary(
        bench in bench_strategy(),
        scheme in scheme_strategy(),
        fault in fault_strategy(),
        seed in 0u64..1000,
        crash_fraction in 1u64..99,
    ) {
        let params = WorkloadParams { threads: 2, init_ops: 60, sim_ops: 8, seed };
        let workload = generate(bench, &params);
        let oracle = ConsistencyOracle::new(&workload);
        let config = SystemConfig::skylake_like().with_num_cores(2);
        let total = {
            let mut m = System::new(&config, scheme, &workload).unwrap();
            m.run().unwrap().total_cycles
        };
        let crash_at = (total * crash_fraction / 100).max(1);
        let mut m = System::new(&config, scheme, &workload).unwrap();
        m.run_until(crash_at);
        let (recovered, _) = m.crash_and_recover_with(&fault.to_crash_faults()).unwrap();
        if let Err(v) = oracle.check(&recovered) {
            prop_assert!(
                false,
                "{:?}/{:?}/{} seed {} crash {}/{}: {}",
                bench, scheme, fault, seed, crash_at, total, v
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        max_shrink_iters: 8,
        .. ProptestConfig::default()
    })]

    /// Double crashes: crash during the run, recover, then recover again
    /// (modelling a crash during recovery). The second pass must be a
    /// no-op on data.
    #[test]
    fn recovery_is_idempotent(
        bench in bench_strategy(),
        scheme in scheme_strategy(),
        crash_fraction in 1u64..99,
    ) {
        let params = WorkloadParams { threads: 1, init_ops: 40, sim_ops: 6, seed: 11 };
        let workload = generate(bench, &params);
        let oracle = ConsistencyOracle::new(&workload);
        let config = SystemConfig::skylake_like().with_num_cores(1);
        let total = {
            let mut m = System::new(&config, scheme, &workload).unwrap();
            m.run().unwrap().total_cycles
        };
        let mut m = System::new(&config, scheme, &workload).unwrap();
        m.run_until((total * crash_fraction / 100).max(1));
        let (once, _) = m.crash_and_recover().unwrap();
        prop_assert!(oracle.check(&once).is_ok());
        let mut twice = once.clone();
        proteus_core::recovery::recover(&mut twice, m.layout(), scheme, m.threads()).unwrap();
        prop_assert!(oracle.check(&twice).is_ok());
        let (lo, hi) = proteus_workloads::thread_arena(proteus_types::ThreadId::new(0));
        prop_assert!(
            twice.diff(&once).iter().all(|a| *a < lo || *a >= hi),
            "second recovery changed data"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8,
        max_shrink_iters: 8,
        .. ProptestConfig::default()
    })]

    /// Random small specs explore without violations through the
    /// persist-event engine (the systematic front door).
    #[test]
    fn random_specs_explore_cleanly(
        bench in bench_strategy(),
        scheme in scheme_strategy(),
        seed in 0u64..500,
    ) {
        let params = WorkloadParams { threads: 1, init_ops: 30, sim_ops: 4, seed };
        let spec = ExploreSpec::new(bench, params, scheme, 16);
        let outcome = proteus_crash::explore(&spec).unwrap();
        prop_assert!(outcome.points_explored > 0);
        prop_assert!(
            outcome.is_consistent(),
            "{}: {:?}", spec.name(), outcome.violations.first()
        );
    }
}
