//! Property-based crash-consistency testing: for random workloads,
//! schemes, and crash points, recovery must always land on a
//! transaction-consistent state.

use proptest::prelude::*;
use proteus_core::pmem::WordImage;
use proteus_core::program::Op;
use proteus_sim::System;
use proteus_types::config::{LoggingSchemeKind, SystemConfig};
use proteus_workloads::{generate, thread_arena, Benchmark, GeneratedWorkload, WorkloadParams};

fn snapshots(workload: &GeneratedWorkload) -> Vec<Vec<WordImage>> {
    workload
        .programs
        .iter()
        .map(|program| {
            let mut states = vec![workload.initial_image.clone()];
            let mut img = workload.initial_image.clone();
            let mut tx = proteus_core::program::Program::new(program.thread);
            for op in &program.ops {
                tx.ops.push(op.clone());
                if matches!(op, Op::TxEnd) {
                    tx.apply_functionally(&mut img);
                    states.push(img.clone());
                    tx.ops.clear();
                }
            }
            states
        })
        .collect()
}

fn bench_strategy() -> impl Strategy<Value = Benchmark> {
    prop_oneof![
        Just(Benchmark::Queue),
        Just(Benchmark::HashMap),
        Just(Benchmark::AvlTree),
        Just(Benchmark::BTree),
        Just(Benchmark::RbTree),
    ]
}

fn scheme_strategy() -> impl Strategy<Value = LoggingSchemeKind> {
    prop_oneof![
        Just(LoggingSchemeKind::SwPmem),
        Just(LoggingSchemeKind::Atom),
        Just(LoggingSchemeKind::Proteus),
        Just(LoggingSchemeKind::ProteusNoLwr),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        max_shrink_iters: 16,
        .. ProptestConfig::default()
    })]

    /// Crash anywhere, under any failure-safe scheme, on any benchmark:
    /// after recovery every thread's data is a per-transaction prefix of
    /// its program.
    #[test]
    fn recovery_always_lands_on_a_transaction_boundary(
        bench in bench_strategy(),
        scheme in scheme_strategy(),
        seed in 0u64..1000,
        crash_fraction in 1u64..99,
    ) {
        let params = WorkloadParams { threads: 2, init_ops: 60, sim_ops: 8, seed };
        let workload = generate(bench, &params);
        let snaps = snapshots(&workload);
        let config = SystemConfig::skylake_like().with_num_cores(2);
        let total = {
            let mut m = System::new(&config, scheme, &workload).unwrap();
            m.run().unwrap().total_cycles
        };
        let crash_at = (total * crash_fraction / 100).max(1);
        let mut m = System::new(&config, scheme, &workload).unwrap();
        m.run_until(crash_at);
        let (recovered, _) = m.crash_and_recover().unwrap();
        for (t, p) in workload.programs.iter().enumerate() {
            let (lo, hi) = thread_arena(p.thread);
            let consistent = snaps[t].iter().any(|snap| {
                recovered.diff(snap).iter().all(|a| *a < lo || *a >= hi)
            });
            prop_assert!(
                consistent,
                "{:?}/{:?} seed {} crash {}/{}: thread {} torn",
                bench, scheme, seed, crash_at, total, t
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        max_shrink_iters: 8,
        .. ProptestConfig::default()
    })]

    /// Double crashes: crash during the run, recover, then recover again
    /// (modelling a crash during recovery). The second pass must be a
    /// no-op on data.
    #[test]
    fn recovery_is_idempotent(
        bench in bench_strategy(),
        scheme in scheme_strategy(),
        crash_fraction in 1u64..99,
    ) {
        let params = WorkloadParams { threads: 1, init_ops: 40, sim_ops: 6, seed: 11 };
        let workload = generate(bench, &params);
        let config = SystemConfig::skylake_like().with_num_cores(1);
        let total = {
            let mut m = System::new(&config, scheme, &workload).unwrap();
            m.run().unwrap().total_cycles
        };
        let mut m = System::new(&config, scheme, &workload).unwrap();
        m.run_until((total * crash_fraction / 100).max(1));
        let (once, _) = m.crash_and_recover().unwrap();
        let mut twice = once.clone();
        proteus_core::recovery::recover(
            &mut twice,
            m.layout(),
            scheme,
            &[proteus_types::ThreadId::new(0)],
        ).unwrap();
        let (lo, hi) = thread_arena(proteus_types::ThreadId::new(0));
        prop_assert!(
            twice.diff(&once).iter().all(|a| *a < lo || *a >= hi),
            "second recovery changed data"
        );
    }
}
