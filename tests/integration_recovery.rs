//! Cross-crate crash-recovery integration: crash the full system at many
//! points during real workloads and verify transaction atomicity after
//! recovery, for every failure-safe scheme.

use proteus_core::pmem::WordImage;
use proteus_core::program::Op;
use proteus_sim::System;
use proteus_types::config::{LoggingSchemeKind, SystemConfig};
use proteus_workloads::{generate, thread_arena, Benchmark, GeneratedWorkload, WorkloadParams};

/// Functional snapshots of a thread's state after 0, 1, 2, ... committed
/// transactions.
fn snapshots(workload: &GeneratedWorkload) -> Vec<Vec<WordImage>> {
    workload
        .programs
        .iter()
        .map(|program| {
            let mut states = vec![workload.initial_image.clone()];
            let mut img = workload.initial_image.clone();
            let mut tx = proteus_core::program::Program::new(program.thread);
            for op in &program.ops {
                tx.ops.push(op.clone());
                if matches!(op, Op::TxEnd) {
                    tx.apply_functionally(&mut img);
                    states.push(img.clone());
                    tx.ops.clear();
                }
            }
            states
        })
        .collect()
}

/// Whether `image` matches some per-thread snapshot within every thread's
/// arena.
fn is_prefix_consistent(
    image: &WordImage,
    workload: &GeneratedWorkload,
    snaps: &[Vec<WordImage>],
) -> bool {
    workload.programs.iter().enumerate().all(|(t, p)| {
        let (lo, hi) = thread_arena(p.thread);
        snaps[t].iter().any(|snap| image.diff(snap).iter().all(|a| *a < lo || *a >= hi))
    })
}

fn crash_grid(bench: Benchmark, scheme: LoggingSchemeKind, probes: u64) {
    let params = WorkloadParams { threads: 2, init_ops: 100, sim_ops: 15, seed: 31 };
    let workload = generate(bench, &params);
    let snaps = snapshots(&workload);
    let config = SystemConfig::skylake_like().with_num_cores(2);
    let total = {
        let mut m = System::new(&config, scheme, &workload).unwrap();
        m.run().unwrap().total_cycles
    };
    for i in 0..probes {
        let crash_at = total * (i + 1) / (probes + 1) + i; // stagger
        let mut m = System::new(&config, scheme, &workload).unwrap();
        m.run_until(crash_at);
        let (recovered, _report) = m.crash_and_recover().unwrap();
        assert!(
            is_prefix_consistent(&recovered, &workload, &snaps),
            "{bench:?}/{scheme:?}: crash at {crash_at}/{total} not atomic"
        );
    }
}

#[test]
fn proteus_recovery_is_atomic_on_trees() {
    crash_grid(Benchmark::AvlTree, LoggingSchemeKind::Proteus, 10);
    crash_grid(Benchmark::RbTree, LoggingSchemeKind::Proteus, 10);
}

#[test]
fn proteus_recovery_is_atomic_on_queue_and_hashmap() {
    crash_grid(Benchmark::Queue, LoggingSchemeKind::Proteus, 10);
    crash_grid(Benchmark::HashMap, LoggingSchemeKind::Proteus, 10);
}

#[test]
fn proteus_nolwr_recovery_is_atomic() {
    crash_grid(Benchmark::BTree, LoggingSchemeKind::ProteusNoLwr, 8);
}

#[test]
fn atom_recovery_is_atomic() {
    crash_grid(Benchmark::HashMap, LoggingSchemeKind::Atom, 8);
    crash_grid(Benchmark::BTree, LoggingSchemeKind::Atom, 8);
}

#[test]
fn sw_recovery_is_atomic() {
    crash_grid(Benchmark::Queue, LoggingSchemeKind::SwPmem, 8);
    crash_grid(Benchmark::AvlTree, LoggingSchemeKind::SwPmem, 8);
}

#[test]
fn sw_pcommit_recovery_is_atomic_without_adr() {
    // Without ADR the WPQ is volatile: the pcommit variant must still
    // recover because every persist point drains to NVMM.
    let params = WorkloadParams { threads: 1, init_ops: 60, sim_ops: 8, seed: 5 };
    let workload = generate(Benchmark::HashMap, &params);
    let snaps = snapshots(&workload);
    let mut config = SystemConfig::skylake_like().with_num_cores(1);
    config.mem.adr = false;
    let scheme = LoggingSchemeKind::SwPmemPcommit;
    let total = {
        let mut m = System::new(&config, scheme, &workload).unwrap();
        m.run().unwrap().total_cycles
    };
    for i in 0..8u64 {
        let crash_at = total * (i + 1) / 9;
        let mut m = System::new(&config, scheme, &workload).unwrap();
        m.run_until(crash_at);
        let (recovered, _) = m.crash_and_recover().unwrap();
        assert!(
            is_prefix_consistent(&recovered, &workload, &snaps),
            "pcommit without ADR: crash at {crash_at}/{total} not atomic"
        );
    }
}

/// Recovery right after completion finds committed transactions and
/// changes nothing.
#[test]
fn recovery_after_clean_completion_is_a_noop() {
    let params = WorkloadParams { threads: 2, init_ops: 80, sim_ops: 10, seed: 13 };
    let workload = generate(Benchmark::RbTree, &params);
    let config = SystemConfig::skylake_like().with_num_cores(2);
    for scheme in [LoggingSchemeKind::Proteus, LoggingSchemeKind::Atom, LoggingSchemeKind::SwPmem] {
        let mut m = System::new(&config, scheme, &workload).unwrap();
        m.run().unwrap();
        let before = m.crash_image();
        let (after, report) = m.crash_and_recover().unwrap();
        for (_, outcome) in &report.outcomes {
            assert!(
                !matches!(outcome, proteus_core::recovery::ThreadOutcome::RolledBack { .. }),
                "{scheme:?}: clean completion must not roll back, got {outcome:?}"
            );
        }
        // Data regions unchanged.
        for p in &workload.programs {
            let (lo, hi) = thread_arena(p.thread);
            assert!(
                after.diff(&before).iter().all(|a| *a < lo || *a >= hi),
                "{scheme:?}: recovery mutated data after clean run"
            );
        }
    }
}
