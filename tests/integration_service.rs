//! End-to-end tests of the distributed sweep service over real
//! loopback sockets: worker crashes, zombie leases, HTTP round trips,
//! dedup, assignment exhaustion, and ledger resume.
//!
//! The headline property — the acceptance criterion of the service —
//! is that a distributed sweep with failures injected produces a
//! results ledger **byte-identical** to the same sweep run
//! single-process through the local `Harness` scheduler.

use proteus_harness::{
    Harness, JobSpec, Json, LedgerRecord, LedgerSnapshot, PayloadCodec, SweepOptions,
};
use proteus_service::{
    build_basket, http_request, read_frame, write_frame, Coordinator, CoordinatorConfig,
    HttpServer, ServiceJob, SubmitStatus, ToCoordinator, ToWorker, WorkerOptions,
};
use proteus_types::JobOutcome;
use std::io::Write;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("proteus-it-{}-{name}", std::process::id()))
}

fn start(cfg: CoordinatorConfig) -> Arc<Coordinator> {
    Arc::new(Coordinator::start("127.0.0.1:0", cfg).expect("coordinator boots"))
}

fn spawn_worker(coord: &Coordinator, name: &str) -> std::thread::JoinHandle<()> {
    let addr = coord.local_addr().to_string();
    let opts = WorkerOptions { name: name.to_string(), ..WorkerOptions::default() };
    std::thread::spawn(move || {
        proteus_service::run_worker(&addr, &opts).expect("worker runs to shutdown");
    })
}

/// Speaks the worker protocol by hand: Hello, Request, and returns the
/// live stream plus identity once an assignment arrives.
fn raw_take_assignment(coord: &Coordinator) -> (TcpStream, u64, Json) {
    let mut s = TcpStream::connect(coord.local_addr()).expect("connect");
    write_frame(&mut s, &ToCoordinator::Hello { name: "raw".into() }.to_json()).unwrap();
    let welcome = read_frame(&mut s).unwrap().expect("welcome frame");
    let Some(ToWorker::Welcome { worker_id, .. }) = ToWorker::from_json(&welcome) else {
        panic!("expected welcome, got {welcome:?}");
    };
    loop {
        write_frame(&mut s, &ToCoordinator::Request { worker_id }.to_json()).unwrap();
        let reply = read_frame(&mut s).unwrap().expect("reply frame");
        match ToWorker::from_json(&reply) {
            Some(ToWorker::Assign { job }) => return (s, worker_id, job),
            Some(ToWorker::Idle { wait_ms }) => {
                std::thread::sleep(Duration::from_millis(wait_ms.min(50)));
            }
            other => panic!("unexpected reply: {other:?}"),
        }
    }
}

/// The single-process reference: the same jobs through the local
/// `Harness` scheduler onto a private ledger, exported canonically.
fn single_process_export(jobs: &[ServiceJob], tag: &str) -> String {
    let ledger = temp_path(&format!("{tag}.jsonl"));
    let _ = std::fs::remove_file(&ledger);
    let specs: Vec<JobSpec> = jobs.iter().map(|j| JobSpec::new(j.name(), j.spec_hash())).collect();
    let harness = Harness::<Json>::new()
        .with_codec(PayloadCodec { encode: Json::clone, decode: |v| Some(v.clone()) });
    let opts = SweepOptions { workers: 2, ledger: Some(ledger.clone()), ..SweepOptions::default() };
    harness.run(&specs, &opts, |i| jobs[i].execute()).expect("local sweep");
    let export = LedgerSnapshot::load(&ledger).expect("load ledger").canonical_export();
    let _ = std::fs::remove_file(&ledger);
    export
}

#[test]
fn distributed_matches_single_process_even_with_a_killed_worker() {
    let jobs = build_basket(8);
    let coord = start(CoordinatorConfig::default());
    let (_, statuses) = coord.submit_sweep(jobs.clone());
    assert!(statuses.iter().all(|(_, s)| *s == SubmitStatus::Queued));

    // A worker takes an assignment and dies (socket drop) — the
    // connection-drop path must requeue its job immediately.
    let (stream, _, stolen_job) = raw_take_assignment(&coord);
    drop(stream);
    assert!(ServiceJob::from_json(&stolen_job).is_some(), "assignment carries a real job");

    let w1 = spawn_worker(&coord, "honest-1");
    let w2 = spawn_worker(&coord, "honest-2");
    assert!(coord.wait_idle(Duration::from_secs(120)), "sweep drains despite the kill");

    let distributed = coord.canonical_export();
    let local = single_process_export(&jobs, "killed-worker");
    assert!(!distributed.is_empty());
    assert_eq!(distributed, local, "distributed results must be byte-identical");
    assert!(coord.metrics().counter("service_jobs_reassigned_total") >= 1);

    coord.shutdown();
    w1.join().unwrap();
    w2.join().unwrap();
}

#[test]
fn lease_expiry_reassigns_and_late_result_is_ignored() {
    let jobs = build_basket(2);
    let coord = start(CoordinatorConfig {
        lease_ms: 300, // sweeper period = 75ms
        // Stealing off: otherwise the idle honest worker duplicates
        // the zombie's job before its lease ever expires, and the
        // expiry path under test is never exercised.
        steal: false,
        ..CoordinatorConfig::default()
    });
    coord.submit_sweep(jobs.clone());

    // Zombie: takes a job, keeps the connection open, never heartbeats.
    let (mut zombie, zombie_id, envelope) = raw_take_assignment(&coord);
    let job = ServiceJob::from_json(&envelope).unwrap();
    let hash = job.spec_hash();

    let w = spawn_worker(&coord, "honest");
    assert!(coord.wait_idle(Duration::from_secs(120)), "lease expiry must unblock the sweep");
    let settled = coord.result(hash).expect("job finished via reassignment");
    assert!(settled.outcome.is_completed());
    assert!(coord.metrics().counter("service_jobs_reassigned_total") >= 1);

    // The zombie wakes up and reports a bogus result for the job it
    // lost; first-result-wins means it is counted and discarded.
    let before = coord.metrics().counter("service_duplicate_results_total");
    let late = ToCoordinator::Done {
        worker_id: zombie_id,
        result: proteus_service::WireResult {
            spec_hash: hash,
            name: job.name(),
            outcome: JobOutcome::Completed,
            payload: Json::str("bogus-late-payload"),
            attempts: 1,
            wall_seconds: 0.0,
        },
    };
    write_frame(&mut zombie, &late.to_json()).unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while coord.metrics().counter("service_duplicate_results_total") == before {
        assert!(std::time::Instant::now() < deadline, "late Done never counted");
        std::thread::sleep(Duration::from_millis(10));
    }
    let kept = coord.result(hash).unwrap();
    assert_eq!(kept.payload.to_line(), settled.payload.to_line(), "late result must not win");

    coord.shutdown();
    w.join().unwrap();
}

#[test]
fn http_endpoints_round_trip() {
    let jobs = build_basket(4);
    let coord = start(CoordinatorConfig::default());
    let http = HttpServer::start("127.0.0.1:0", Arc::clone(&coord)).expect("http boots");
    let addr = http.local_addr().to_string();
    let w = spawn_worker(&coord, "http-worker");

    let (status, body) = http_request(&addr, "GET", "/healthz", None).unwrap();
    assert_eq!((status, body.as_str()), (200, "ok\n"));

    let envelopes: Vec<Json> = jobs.iter().map(ServiceJob::to_json).collect();
    let body = Json::obj([("jobs", Json::Arr(envelopes))]).to_line();
    let (status, reply) = http_request(&addr, "POST", "/api/sweeps", Some(&body)).unwrap();
    assert_eq!(status, 200, "{reply}");
    let reply = proteus_harness::json::parse(&reply).unwrap();
    assert_eq!(reply.get("submitted").unwrap().as_u64(), Some(4));
    let sweep = reply.get("sweep").unwrap().as_u64().unwrap();

    // Poll the status endpoint until the sweep reports done.
    let deadline = std::time::Instant::now() + Duration::from_secs(120);
    loop {
        let (status, body) =
            http_request(&addr, "GET", &format!("/api/sweeps/{sweep}"), None).unwrap();
        assert_eq!(status, 200);
        let v = proteus_harness::json::parse(&body).unwrap();
        if v.get("done").unwrap().as_bool() == Some(true) {
            assert_eq!(v.get("completed").unwrap().as_u64(), Some(4));
            break;
        }
        assert!(std::time::Instant::now() < deadline, "sweep never finished: {body}");
        std::thread::sleep(Duration::from_millis(50));
    }

    let (status, results) =
        http_request(&addr, "GET", &format!("/api/sweeps/{sweep}/results"), None).unwrap();
    assert_eq!(status, 200);
    assert_eq!(results.lines().count(), 4);
    assert!(results.lines().all(|l| l.contains("\"outcome\":\"completed\"")));

    let (status, export) = http_request(&addr, "GET", "/api/export", None).unwrap();
    assert_eq!(status, 200);
    assert_eq!(export, coord.canonical_export());

    let (status, metrics) = http_request(&addr, "GET", "/metrics", None).unwrap();
    assert_eq!(status, 200);
    assert!(metrics.contains("# TYPE service_jobs_completed_total counter"));
    assert!(metrics.contains("# TYPE service_job_wall_ms histogram"));

    // Per-job status and the deterministic traced re-run for an
    // experiment job.
    let exp = jobs.iter().find(|j| matches!(j, ServiceJob::Experiment(_))).unwrap();
    let hex = format!("{:016x}", exp.spec_hash());
    let (status, body) = http_request(&addr, "GET", &format!("/api/jobs/{hex}"), None).unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("\"state\":\"done\""), "{body}");
    let (status, trace) =
        http_request(&addr, "GET", &format!("/api/jobs/{hex}/trace"), None).unwrap();
    assert_eq!(status, 200, "{trace}");
    assert!(trace.contains("\"event\":\"trace-summary\""), "{trace}");

    let (status, _) = http_request(&addr, "GET", "/api/jobs/zzzz/trace", None).unwrap();
    assert_eq!(status, 400);
    let (status, _) = http_request(&addr, "GET", "/api/sweeps/999", None).unwrap();
    assert_eq!(status, 404);
    let (status, _) = http_request(&addr, "DELETE", "/api/export", None).unwrap();
    assert_eq!(status, 405);

    coord.shutdown();
    w.join().unwrap();
}

#[test]
fn resubmission_dedupes_by_spec_hash() {
    let jobs = build_basket(1);
    let coord = start(CoordinatorConfig::default());
    let (hash, first) = coord.submit(jobs[0].clone());
    assert_eq!(first, SubmitStatus::Queued);
    assert_eq!(coord.submit(jobs[0].clone()), (hash, SubmitStatus::Deduped));

    let w = spawn_worker(&coord, "dedup-worker");
    assert!(coord.wait_idle(Duration::from_secs(120)));
    assert_eq!(coord.submit(jobs[0].clone()), (hash, SubmitStatus::Done));
    assert_eq!(coord.metrics().counter("service_jobs_completed_total"), 1);
    assert_eq!(coord.metrics().counter("service_submissions_deduped_total"), 2);

    coord.shutdown();
    w.join().unwrap();
}

#[test]
fn exhausted_assignments_yield_a_failed_ledger_record() {
    let ledger = temp_path("exhaust.jsonl");
    let _ = std::fs::remove_file(&ledger);
    let jobs = build_basket(1);
    let hash = jobs[0].spec_hash();
    let coord = start(CoordinatorConfig {
        max_assignments: 2,
        steal: false,
        ledger: Some(ledger.clone()),
        ..CoordinatorConfig::default()
    });
    coord.submit_sweep(jobs);

    // Two raw workers each take the job and die; the second drop
    // exhausts the assignment budget.
    for _ in 0..2 {
        let (stream, _, _) = raw_take_assignment(&coord);
        drop(stream);
        // Wait for the drop to be processed before reconnecting.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while coord.metrics().gauge("service_workers_connected") != 0 {
            assert!(std::time::Instant::now() < deadline);
            std::thread::sleep(Duration::from_millis(10));
        }
    }
    assert!(coord.wait_idle(Duration::from_secs(30)), "exhaustion must terminate the job");
    let rec = coord.result(hash).expect("terminal record exists");
    let JobOutcome::Failed { error } = &rec.outcome else {
        panic!("expected failure, got {:?}", rec.outcome);
    };
    assert!(error.contains("exhausted 2 assignments"), "{error}");
    assert_eq!(coord.metrics().counter("service_jobs_exhausted_total"), 1);

    // The exhaustion note is durable: it reached the ledger.
    let snap = LedgerSnapshot::load(&ledger).expect("ledger readable");
    let on_disk = snap.get(hash).expect("record persisted");
    assert_eq!(&rec.outcome, &on_disk.outcome);
    assert!(snap.completed(hash).is_none(), "a failed job must not satisfy resume");
    let _ = std::fs::remove_file(&ledger);
    coord.shutdown();
}

#[test]
fn coordinator_resumes_completed_jobs_from_its_ledger() {
    let ledger = temp_path("resume.jsonl");
    let _ = std::fs::remove_file(&ledger);
    let jobs = build_basket(3);

    let first = start(CoordinatorConfig { ledger: Some(ledger.clone()), ..Default::default() });
    first.submit_sweep(jobs.clone());
    let w = spawn_worker(&first, "resume-worker");
    assert!(first.wait_idle(Duration::from_secs(120)));
    let export = first.canonical_export();
    first.shutdown();
    w.join().unwrap();

    // A fresh coordinator on the same ledger resolves the same
    // submissions without any worker at all.
    let second = start(CoordinatorConfig { ledger: Some(ledger.clone()), ..Default::default() });
    let (_, statuses) = second.submit_sweep(jobs);
    assert!(statuses.iter().all(|(_, s)| *s == SubmitStatus::Done), "{statuses:?}");
    assert_eq!(second.metrics().counter("service_jobs_resumed_total"), 3);
    assert_eq!(second.pending(), 0);
    assert_eq!(second.canonical_export(), export, "resumed results identical");
    let _ = std::fs::remove_file(&ledger);
    second.shutdown();
}

/// Exercises the demotion path: a wire-completed result whose payload
/// the job's codec cannot decode must be recorded as failed, never as
/// a completed record with a poison payload.
#[test]
fn undecodable_completed_payload_is_demoted_to_failure() {
    let jobs = build_basket(1);
    let hash = jobs[0].spec_hash();
    let coord = start(CoordinatorConfig { steal: false, ..CoordinatorConfig::default() });
    coord.submit_sweep(jobs.clone());

    let (mut s, worker_id, _) = raw_take_assignment(&coord);
    let done = ToCoordinator::Done {
        worker_id,
        result: proteus_service::WireResult {
            spec_hash: hash,
            name: jobs[0].name(),
            outcome: JobOutcome::Completed,
            payload: Json::str("not a real payload"),
            attempts: 1,
            wall_seconds: 0.1,
        },
    };
    write_frame(&mut s, &done.to_json()).unwrap();
    assert!(coord.wait_idle(Duration::from_secs(30)));
    let rec = coord.result(hash).unwrap();
    let JobOutcome::Failed { error } = &rec.outcome else {
        panic!("expected demotion to failure, got {:?}", rec.outcome);
    };
    assert!(error.contains("undecodable"), "{error}");
    assert_eq!(rec.payload, Json::Null, "poison payload must not be stored");
    coord.shutdown();
}

/// A network stall mid-frame must not desync the stream: the
/// coordinator polls reads with a 250 ms timeout, so a Done frame
/// delivered in slow pieces (stalls well over the timeout, splitting
/// both the length prefix and the body) exercises the resumable
/// per-connection reader. Without it, the retried read would misparse
/// body bytes as a fresh length prefix and disconnect the worker.
#[test]
fn mid_frame_stall_does_not_desync_the_stream() {
    let jobs = build_basket(1);
    let hash = jobs[0].spec_hash();
    let coord = start(CoordinatorConfig { steal: false, ..CoordinatorConfig::default() });
    coord.submit_sweep(jobs);

    let (mut s, worker_id, envelope) = raw_take_assignment(&coord);
    let job = ServiceJob::from_json(&envelope).unwrap();
    let payload = job.execute().expect("basket job completes");
    let done = ToCoordinator::Done {
        worker_id,
        result: proteus_service::WireResult {
            spec_hash: hash,
            name: job.name(),
            outcome: JobOutcome::Completed,
            payload,
            attempts: 1,
            wall_seconds: 0.1,
        },
    };
    let mut bytes = Vec::new();
    write_frame(&mut bytes, &done.to_json()).unwrap();
    assert!(bytes.len() > 10, "Done frames are comfortably larger than the splits");
    // Trickle the frame: 2 bytes (mid length prefix) … stall … 8 more
    // (mid body) … stall … the rest. Each stall spans several read
    // timeouts on the coordinator side.
    for part in [&bytes[..2], &bytes[2..10], &bytes[10..]] {
        s.write_all(part).unwrap();
        s.flush().unwrap();
        std::thread::sleep(Duration::from_millis(600));
    }
    assert!(coord.wait_idle(Duration::from_secs(30)), "stalled frame must still land");
    let rec = coord.result(hash).expect("job finished via the trickled frame");
    assert!(rec.outcome.is_completed(), "{:?}", rec.outcome);
    assert_eq!(coord.metrics().counter("service_jobs_reassigned_total"), 0);
    coord.shutdown();
}

/// A result for a spec hash the coordinator never issued (a worker
/// that could not decode its envelope reports spec_hash 0) must
/// release that worker's leases immediately — requeue happens now, not
/// a full lease period later — and be counted under its own metric,
/// not as a duplicate.
#[test]
fn unmatched_result_releases_the_workers_leases_immediately() {
    let jobs = build_basket(1);
    let hash = jobs[0].spec_hash();
    // Default 30 s lease: if the test drains quickly, it proved the
    // release did not wait for lease expiry.
    let coord = start(CoordinatorConfig { steal: false, ..CoordinatorConfig::default() });
    coord.submit_sweep(jobs.clone());

    let (mut s, worker_id, _) = raw_take_assignment(&coord);
    let bogus = ToCoordinator::Done {
        worker_id,
        result: proteus_service::WireResult {
            spec_hash: 0,
            name: "malformed".to_string(),
            outcome: JobOutcome::Failed { error: "undecodable job envelope".to_string() },
            payload: Json::Null,
            attempts: 1,
            wall_seconds: 0.0,
        },
    };
    write_frame(&mut s, &bogus.to_json()).unwrap();

    // The job must return to the queue promptly (well under the lease).
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let status = coord.job_status_json(hash).expect("job still tracked");
        if status.get("state").and_then(Json::as_str) == Some("queued") {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "lease never released: {status:?}");
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(coord.metrics().counter("service_unmatched_results_total"), 1);
    assert_eq!(coord.metrics().counter("service_duplicate_results_total"), 0);

    let w = spawn_worker(&coord, "honest");
    assert!(coord.wait_idle(Duration::from_secs(120)), "requeued job must complete");
    assert!(coord.result(hash).unwrap().outcome.is_completed());
    coord.shutdown();
    w.join().unwrap();
}

/// The same ledger record shape flows over the wire and into the
/// ledger: what `sweep_results_jsonl` streams parses back as ledger
/// records with the shared codec.
#[test]
fn streamed_results_are_ledger_shaped() {
    let jobs = build_basket(2);
    let coord = start(CoordinatorConfig::default());
    let (sweep, _) = coord.submit_sweep(jobs);
    let w = spawn_worker(&coord, "shape-worker");
    assert!(coord.wait_idle(Duration::from_secs(120)));
    let lines = coord.sweep_results_jsonl(sweep).unwrap();
    assert_eq!(lines.lines().count(), 2);
    for line in lines.lines() {
        let v = proteus_harness::json::parse(line).expect("valid json");
        let rec = LedgerRecord::from_json(&v).expect("ledger-shaped line");
        assert!(rec.outcome.is_completed());
    }
    coord.shutdown();
    w.join().unwrap();
}
