//! Experiment-harness integration: tiny-scale versions of the paper's
//! figures must reproduce the qualitative results (orderings and
//! crossovers), guarding the benchmark harness against regressions.

use proteus_sim::runner::sweep_schemes;
use proteus_types::config::{LoggingSchemeKind, MemTech, SystemConfig};
use proteus_types::stats::geometric_mean;
use proteus_workloads::{Benchmark, WorkloadParams};

fn params(bench: Benchmark) -> WorkloadParams {
    WorkloadParams::table2(bench, 4, 0.01)
}

fn config() -> SystemConfig {
    SystemConfig::skylake_like().with_num_cores(4).with_cache_divisor(64)
}

#[test]
fn fig6_shape_geomean_ordering() {
    let mut speedups: Vec<(f64, f64, f64, f64)> = Vec::new();
    for bench in Benchmark::TABLE2 {
        let sweep =
            sweep_schemes(&config(), bench, &params(bench), &LoggingSchemeKind::ALL).unwrap();
        speedups.push((
            sweep.speedup(LoggingSchemeKind::SwPmemPcommit),
            sweep.speedup(LoggingSchemeKind::Atom),
            sweep.speedup(LoggingSchemeKind::Proteus),
            sweep.speedup(LoggingSchemeKind::NoLog),
        ));
    }
    let gm = |f: fn(&(f64, f64, f64, f64)) -> f64| {
        geometric_mean(&speedups.iter().map(f).collect::<Vec<_>>())
    };
    let pcommit = gm(|s| s.0);
    let atom = gm(|s| s.1);
    let proteus = gm(|s| s.2);
    let nolog = gm(|s| s.3);
    // Paper Fig. 6: pcommit 0.79 < 1 < ATOM 1.33 < Proteus 1.46 ≤ nolog 1.51.
    assert!(pcommit < 1.0, "pcommit geomean {pcommit} must be below baseline");
    assert!(atom > 1.0, "ATOM geomean {atom} must beat the baseline");
    assert!(proteus > atom, "Proteus {proteus} must beat ATOM {atom}");
    assert!(nolog >= proteus * 0.95, "nothing meaningfully beats no logging");
}

#[test]
fn fig8_shape_atom_writes_most() {
    let mut atom_ratio = Vec::new();
    let mut proteus_ratio = Vec::new();
    for bench in [Benchmark::Queue, Benchmark::HashMap, Benchmark::AvlTree] {
        let sweep = sweep_schemes(
            &config(),
            bench,
            &params(bench),
            &[
                LoggingSchemeKind::SwPmem,
                LoggingSchemeKind::Atom,
                LoggingSchemeKind::Proteus,
                LoggingSchemeKind::NoLog,
            ],
        )
        .unwrap();
        atom_ratio.push(sweep.nvmm_writes_normalized(LoggingSchemeKind::Atom));
        proteus_ratio.push(sweep.nvmm_writes_normalized(LoggingSchemeKind::Proteus));
    }
    let atom = atom_ratio.iter().sum::<f64>() / atom_ratio.len() as f64;
    let proteus = proteus_ratio.iter().sum::<f64>() / proteus_ratio.len() as f64;
    // Paper: ATOM ≈ 3.4×, Proteus ≤ 1.06×.
    assert!(atom > 1.5, "ATOM write amplification {atom} too low");
    assert!(proteus < 1.5, "Proteus write amplification {proteus} too high");
    assert!(atom > proteus * 1.5, "ATOM must write much more than Proteus");
}

#[test]
fn fig9_slow_nvm_hurts_everyone_but_proteus_stays_ahead() {
    let bench = Benchmark::HashMap;
    let fast = sweep_schemes(
        &config().with_mem_tech(MemTech::NvmFast),
        bench,
        &params(bench),
        &[LoggingSchemeKind::SwPmem, LoggingSchemeKind::Atom, LoggingSchemeKind::Proteus],
    )
    .unwrap();
    let slow = sweep_schemes(
        &config().with_mem_tech(MemTech::NvmSlow),
        bench,
        &params(bench),
        &[LoggingSchemeKind::SwPmem, LoggingSchemeKind::Atom, LoggingSchemeKind::Proteus],
    )
    .unwrap();
    // Absolute time grows with slower writes.
    assert!(
        slow.summary_of(LoggingSchemeKind::Proteus).total_cycles
            >= fast.summary_of(LoggingSchemeKind::Proteus).total_cycles
    );
    // Proteus still beats ATOM on slow NVM (paper: the gap grows).
    assert!(slow.speedup(LoggingSchemeKind::Proteus) > slow.speedup(LoggingSchemeKind::Atom));
}

#[test]
fn fig10_dram_is_faster_than_nvm() {
    let bench = Benchmark::Queue;
    let run = |tech| {
        sweep_schemes(
            &config().with_mem_tech(tech),
            bench,
            &params(bench),
            &[LoggingSchemeKind::SwPmem, LoggingSchemeKind::Proteus],
        )
        .unwrap()
    };
    let nvm = run(MemTech::NvmFast);
    let dram = run(MemTech::Dram);
    assert!(
        dram.summary_of(LoggingSchemeKind::Proteus).total_cycles
            < nvm.summary_of(LoggingSchemeKind::Proteus).total_cycles,
        "DRAM must be faster than NVM"
    );
    assert!(dram.speedup(LoggingSchemeKind::Proteus) > 1.0);
}

#[test]
fn fig11_logq_size_1_hurts() {
    let bench = Benchmark::StringSwap;
    let speedup = |entries| {
        sweep_schemes(
            &config().with_logq_entries(entries),
            bench,
            &params(bench),
            &[LoggingSchemeKind::SwPmem, LoggingSchemeKind::Proteus],
        )
        .unwrap()
        .speedup(LoggingSchemeKind::Proteus)
    };
    let one = speedup(1);
    let sixteen = speedup(16);
    assert!(sixteen > one, "a 16-entry LogQ ({sixteen}) must beat a 1-entry LogQ ({one})");
}

#[test]
fn table4_llt_miss_rates_in_band() {
    for bench in [Benchmark::Queue, Benchmark::StringSwap] {
        let sweep =
            sweep_schemes(&config(), bench, &params(bench), &[LoggingSchemeKind::Proteus]).unwrap();
        let merged = sweep.summary_of(LoggingSchemeKind::Proteus).cores_merged();
        let rate = merged.llt_miss_rate_pct().expect("lookups happened");
        // Paper Table 4 band: 22.5% (QE) to 51.6% (RT).
        assert!((5.0..95.0).contains(&rate), "{bench:?} LLT miss rate {rate}% implausible");
    }
}
