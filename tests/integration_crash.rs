//! End-to-end tests of the crash-point exploration engine.
//!
//! Three pillars:
//!
//! 1. **Soundness** — every failure-safe scheme survives systematic
//!    crash-point exploration (clean and torn-line faults) with zero
//!    violations, and the prefix-drain fault that *exceeds* the ADR
//!    guarantee is detected (the checker can see real torn states).
//! 2. **Self-validation** — the deliberately broken
//!    `disable_persist_ordering` core is caught, shrunk to a minimal
//!    repro, and the repro replays through its JSON artifact.
//! 3. **Double crashes** — crashing *during recovery* at every durable
//!    recovery write, then recovering again, converges to the same
//!    consistent state for both the logFlag and commit-marker protocols.

use proteus_core::recovery::{recover, recover_with_budget};
use proteus_crash::{
    choose_points, explore, shrink, sweep, ConsistencyOracle, CrashRepro, ExploreSpec, FaultSpec,
};
use proteus_harness::SweepOptions;
use proteus_sim::System;
use proteus_types::config::{LoggingSchemeKind, SystemConfig};
use proteus_workloads::{generate, Benchmark, ContendedKind, ContendedSpec, WorkloadParams};

const FAILURE_SAFE: [LoggingSchemeKind; 4] = [
    LoggingSchemeKind::SwPmem,
    LoggingSchemeKind::Atom,
    LoggingSchemeKind::Proteus,
    LoggingSchemeKind::ProteusNoLwr,
];

fn small_params(threads: usize) -> WorkloadParams {
    WorkloadParams { threads, init_ops: 40, sim_ops: 6, seed: 23 }
}

#[test]
fn every_failure_safe_scheme_survives_clean_exploration() {
    for scheme in FAILURE_SAFE {
        let spec = ExploreSpec::new(Benchmark::Queue, small_params(2), scheme, 48);
        let outcome = explore(&spec).unwrap();
        assert!(outcome.total_events > 0, "{scheme:?}: no persist events");
        assert!(outcome.points_explored > 0);
        assert!(outcome.is_consistent(), "{scheme:?} violated at {:?}", outcome.violations.first());
    }
}

#[test]
fn torn_line_writes_are_masked_by_the_adr_drain() {
    // In-service entries stay queue-resident until the bank write
    // completes, so a full drain papers over any torn line. A violation
    // here means the controller started acking early — a real bug.
    for mask in [0x00, 0x0F, 0xAA] {
        let spec = ExploreSpec {
            fault: FaultSpec::TornLine { mask },
            ..ExploreSpec::new(Benchmark::HashMap, small_params(2), LoggingSchemeKind::Proteus, 32)
        };
        let outcome = explore(&spec).unwrap();
        assert!(outcome.is_consistent(), "mask {mask:#x}: {:?}", outcome.violations.first());
    }
}

#[test]
fn prefix_only_adr_drain_is_detected() {
    // A partial battery drain exceeds the ADR guarantee: a strict prefix
    // of each queue survives, so acknowledged-durable writes vanish while
    // later state (a stale log, a commit marker) may survive. Dropping
    // *everything* is ironically consistent — it rewinds to an earlier
    // boundary — so the positive control scans intermediate survivor
    // counts until the checker sees a genuinely torn state. This proves
    // the oracle can fail.
    let mut caught = 0usize;
    for (wpq_keep, lpq_keep) in [(1, 1), (0, 0), (2, 1), (1, 0)] {
        let spec = ExploreSpec {
            fault: FaultSpec::PartialAdr { wpq_keep, lpq_keep },
            ..ExploreSpec::new(Benchmark::Queue, small_params(2), LoggingSchemeKind::Proteus, 96)
        };
        assert!(!spec.fault.expects_consistency());
        caught += explore(&spec).unwrap().violations.len();
    }
    assert!(caught > 0, "partial ADR drains must tear at least one state");
}

#[test]
fn dropped_in_flight_requests_are_already_the_clean_model() {
    // Acceptance is the durability ack; unaccepted requests are always
    // lost. The DroppedInFlight fault must therefore change nothing.
    let base = ExploreSpec::new(Benchmark::Queue, small_params(1), LoggingSchemeKind::Atom, 32);
    let dropped = ExploreSpec { fault: FaultSpec::DroppedInFlight, ..base.clone() };
    let a = explore(&base).unwrap();
    let b = explore(&dropped).unwrap();
    assert_eq!(a.total_events, b.total_events);
    assert!(a.is_consistent() && b.is_consistent());
}

#[test]
fn broken_persist_ordering_is_caught_shrunk_and_replayed() {
    // The deliberately broken core: stores release before their log
    // entry is durable, and ready log flushes are buffered until the
    // commit fence. Crashing between a store's durability and its log
    // entry's leaves a torn state no recovery can fix — exploration MUST
    // see it, shrink must minimise it, and the JSON artifact must replay.
    // (Not every seed tears: a tx whose only *content-changing* line is
    // written atomically survives even broken ordering. Seed 7 produces
    // multi-line mutations whose write-backs split across cycles.)
    let spec = ExploreSpec {
        broken_ordering: true,
        ..ExploreSpec::new(
            Benchmark::Queue,
            WorkloadParams { threads: 1, init_ops: 40, sim_ops: 8, seed: 7 },
            LoggingSchemeKind::Proteus,
            256,
        )
    };
    let outcome = explore(&spec).unwrap();
    assert!(
        !outcome.violations.is_empty(),
        "the broken-ordering knob must be caught ({} points over {} events)",
        outcome.points_explored,
        outcome.total_events
    );

    let repro = shrink(&spec).unwrap().expect("violating spec must shrink");
    assert!(repro.spec.params.sim_ops <= spec.params.sim_ops);
    assert!(repro.spec.params.init_ops <= spec.params.init_ops);

    // Round-trip through the artifact file, then replay from scratch.
    let path =
        std::env::temp_dir().join(format!("proteus-crash-selftest-{}.json", std::process::id()));
    repro.save(&path).unwrap();
    let loaded = CrashRepro::load(&path).unwrap();
    std::fs::remove_file(&path).unwrap();
    assert_eq!(loaded, repro);
    let replay = loaded.replay().unwrap();
    assert!(replay.violated, "shrunk repro must reproduce: {}", replay.detail);
}

#[test]
fn fixed_proteus_passes_where_broken_proteus_fails() {
    // Same workload, same crash points, knob off: zero violations. This
    // pins that the detection above is the knob's fault, not noise.
    let spec = ExploreSpec::new(
        Benchmark::Queue,
        WorkloadParams { threads: 1, init_ops: 40, sim_ops: 8, seed: 7 },
        LoggingSchemeKind::Proteus,
        256,
    );
    let outcome = explore(&spec).unwrap();
    assert!(outcome.is_consistent(), "{:?}", outcome.violations.first());
}

#[test]
fn every_failure_safe_scheme_survives_contended_exploration() {
    // The cross-thread pillar: inter-core sharing through ticket locks
    // must not open any crash window the oracle can see. Each contended
    // structure is explored under every failure-safe scheme; the
    // judgement is the cross-thread oracle (commit-prefix matching in
    // lock-handoff order), dispatched automatically off the workload's
    // sharing plan.
    let params = WorkloadParams { threads: 2, init_ops: 48, sim_ops: 10, seed: 5 };
    for kind in ContendedKind::ALL {
        for scheme in FAILURE_SAFE {
            let spec = ExploreSpec::new(
                ContendedSpec { kind, early_release: false },
                params.clone(),
                scheme,
                32,
            );
            let outcome = explore(&spec).unwrap();
            assert!(outcome.total_events > 0, "{kind:?}/{scheme:?}: no persist events");
            assert!(
                outcome.is_consistent(),
                "{kind:?}/{scheme:?} violated at {:?}",
                outcome.violations.first()
            );
        }
    }
}

#[test]
fn early_lock_release_is_caught_by_the_cross_thread_oracle() {
    // Oracle self-test: the `early_release` knob drops the data-lock
    // release store *before* the transaction, so a successor thread can
    // commit writes whose predecessor never became durable. Crashing in
    // that window leaves a structure state matching no commit prefix —
    // only the cross-thread oracle can see this (each thread's own
    // snapshot sequence is locally consistent). Exploration MUST catch
    // it, and the violation must name the prefix check.
    let params = WorkloadParams { threads: 3, init_ops: 64, sim_ops: 16, seed: 9 };
    let mut caught = 0usize;
    for kind in ContendedKind::ALL {
        let spec = ExploreSpec::new(
            ContendedSpec { kind, early_release: true },
            params.clone(),
            LoggingSchemeKind::Proteus,
            256,
        );
        let outcome = explore(&spec).unwrap();
        caught += outcome.violations.len();
        for v in &outcome.violations {
            assert!(
                v.detail.contains("commit prefix") || v.detail.contains("program order"),
                "unexpected violation shape: {}",
                v.detail
            );
        }
    }
    assert!(caught > 0, "the early-release fault knob must tear at least one state");
}

#[test]
fn double_crash_during_recovery_is_idempotent() {
    // Crash mid-run, then crash *during recovery* after every possible
    // durable recovery write, then recover again. Both protocols promise
    // convergence: logFlag via the flag clear, txID via the stamped
    // commit marker.
    for scheme in [LoggingSchemeKind::SwPmem, LoggingSchemeKind::Proteus] {
        let params = small_params(1);
        let workload = generate(Benchmark::RbTree, &params);
        let oracle = ConsistencyOracle::new(&workload);
        let cfg = SystemConfig::skylake_like().with_num_cores(1);
        let total = {
            let mut m = System::new(&cfg, scheme, &workload).unwrap();
            m.run().unwrap();
            m.persist_seq()
        };
        let mut m = System::new(&cfg, scheme, &workload).unwrap();
        for event in choose_points(total, 5, 7 + total) {
            assert!(m.run_until_persist_event(event));
            let crashed = m.crash_image();

            // Reference: one uninterrupted recovery.
            let mut reference = crashed.clone();
            let full =
                recover_with_budget(&mut reference, m.layout(), scheme, m.threads(), usize::MAX)
                    .unwrap();
            oracle.check(&reference).unwrap();

            for k in 0..full.writes {
                let mut img = crashed.clone();
                let partial =
                    recover_with_budget(&mut img, m.layout(), scheme, m.threads(), k).unwrap();
                assert_eq!(partial.writes, k);
                assert!(partial.exhausted);
                recover(&mut img, m.layout(), scheme, m.threads()).unwrap();
                assert_eq!(
                    img, reference,
                    "{scheme:?} event {event}: double crash at recovery write {k} diverged"
                );
            }
        }
    }
}

#[test]
fn harness_sweep_runs_explorations_in_parallel() {
    let specs: Vec<ExploreSpec> = FAILURE_SAFE
        .iter()
        .map(|&scheme| ExploreSpec::new(Benchmark::Queue, small_params(1), scheme, 12))
        .collect();
    let report = sweep(&specs, &SweepOptions { workers: 2, ..SweepOptions::default() }).unwrap();
    assert!(report.is_all_completed());
    assert_eq!(report.results.len(), 4);
    for r in &report.results {
        let outcome = r.payload.as_ref().unwrap();
        assert!(outcome.points_explored > 0);
        assert!(outcome.is_consistent(), "{}: {:?}", r.name, outcome.violations.first());
    }
}

#[test]
fn sweep_resumes_from_its_ledger() {
    let path = std::env::temp_dir()
        .join(format!("proteus-crash-sweep-ledger-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let specs =
        vec![ExploreSpec::new(Benchmark::Queue, small_params(1), LoggingSchemeKind::Proteus, 8)];
    let opts = SweepOptions { workers: 1, ledger: Some(path.clone()), ..SweepOptions::default() };
    let first = sweep(&specs, &opts).unwrap();
    assert_eq!(first.executed, 1);
    let second = sweep(&specs, &opts).unwrap();
    std::fs::remove_file(&path).unwrap();
    assert_eq!(second.executed, 0, "completed exploration must resume from the ledger");
    assert_eq!(second.resumed, 1);
    assert_eq!(
        second.results[0].payload.as_ref().unwrap(),
        first.results[0].payload.as_ref().unwrap()
    );
}
