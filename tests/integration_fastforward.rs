//! The engine contract: engine settings change wall-clock time only.
//! Every simulated outcome — the full `RunSummary` (cycles, per-queue
//! stalls, cache and memory counters) and the cycle-stamped
//! persist-event timeline — must be byte-identical with event-driven
//! fast-forwarding on and off, *and* across parallel-engine worker
//! thread counts (DESIGN.md §11), for every workload × scheme pair.

use proteus_sim::System;
use proteus_types::config::{EngineConfig, LoggingSchemeKind, SystemConfig};
use proteus_types::stats::RunSummary;
use proteus_workloads::{generate, Benchmark, GeneratedWorkload, WorkloadParams};

fn small(bench: Benchmark) -> GeneratedWorkload {
    generate(bench, &WorkloadParams { threads: 2, init_ops: 100, sim_ops: 20, seed: 11 })
}

fn config() -> SystemConfig {
    SystemConfig::skylake_like().with_num_cores(2)
}

/// Runs `workload` under `scheme` with the requested engine mode and
/// returns everything externally observable about the run.
fn observe(
    workload: &GeneratedWorkload,
    scheme: LoggingSchemeKind,
    fast_forward: bool,
) -> (RunSummary, Vec<proteus_mem::PersistEvent>, u64) {
    let mut system = System::new(&config(), scheme, workload).unwrap();
    system.set_fast_forward(fast_forward);
    system.set_record_persist_events(true);
    let summary = system.run().unwrap();
    let timeline = system.persist_timeline().to_vec();
    let now = system.now();
    (summary, timeline, now)
}

/// The headline determinism pin: identical summaries and identical
/// persist timelines (same events, same cycle stamps, same order) across
/// the whole workload table for both hardware schemes and the software
/// baseline.
#[test]
fn fast_forward_is_invisible_to_simulated_state() {
    for bench in Benchmark::TABLE2 {
        let workload = small(bench);
        for scheme in
            [LoggingSchemeKind::Atom, LoggingSchemeKind::Proteus, LoggingSchemeKind::SwPmemPcommit]
        {
            let (sum_ff, tl_ff, _) = observe(&workload, scheme, true);
            let (sum_ss, tl_ss, _) = observe(&workload, scheme, false);
            assert_eq!(
                sum_ff, sum_ss,
                "{bench:?}/{scheme:?}: RunSummary diverged between engine modes"
            );
            assert_eq!(
                tl_ff, tl_ss,
                "{bench:?}/{scheme:?}: persist timeline diverged between engine modes"
            );
        }
    }
}

/// The same pin on the contended axis: inter-core sharing (coherence
/// traffic, invalidations, lock spins) must be modeled on clock edges
/// the fast-forward engine can see. Every contended workload × every
/// failure-safe scheme, byte-identical summaries and persist timelines.
#[test]
fn fast_forward_is_invisible_on_contended_workloads() {
    use proteus_workloads::{generate_contended, ContendedKind, ContendedSpec};
    let params = WorkloadParams { threads: 2, init_ops: 48, sim_ops: 10, seed: 11 };
    for kind in ContendedKind::ALL {
        let workload = generate_contended(&ContendedSpec { kind, early_release: false }, &params);
        for scheme in [
            LoggingSchemeKind::SwPmem,
            LoggingSchemeKind::SwPmemPcommit,
            LoggingSchemeKind::Atom,
            LoggingSchemeKind::ProteusNoLwr,
            LoggingSchemeKind::Proteus,
            LoggingSchemeKind::Incll,
        ] {
            let (sum_ff, tl_ff, now_ff) = observe(&workload, scheme, true);
            let (sum_ss, tl_ss, now_ss) = observe(&workload, scheme, false);
            assert_eq!(
                sum_ff, sum_ss,
                "{kind:?}/{scheme:?}: RunSummary diverged between engine modes"
            );
            assert_eq!(
                tl_ff, tl_ss,
                "{kind:?}/{scheme:?}: persist timeline diverged between engine modes"
            );
            assert_eq!(now_ff, now_ss, "{kind:?}/{scheme:?}: completion cycle diverged");
            assert!(
                sum_ff.coherence.lock_acquires > 0,
                "{kind:?}/{scheme:?}: contended run must acquire locks"
            );
        }
    }
}

/// Fast-forwarding must not change where `run_until` lands or what the
/// crash image holds at an intermediate persist event.
#[test]
fn fast_forward_preserves_crash_points() {
    let workload = small(Benchmark::Queue);
    for scheme in [LoggingSchemeKind::Atom, LoggingSchemeKind::Proteus] {
        let image = |ff: bool| {
            let mut system = System::new(&config(), scheme, &workload).unwrap();
            system.set_fast_forward(ff);
            assert!(system.run_until_persist_event(5), "queue workload persists plenty");
            (system.now(), system.persist_seq(), system.crash_image())
        };
        assert_eq!(image(true), image(false), "{scheme:?}: crash point diverged");
    }
}

/// The `next_event_cycle` contract — no component may report a wake
/// later than its first actual state change. Validation mode
/// single-steps through every would-be skip and asserts the machine
/// fingerprint holds still, so an over-report panics the run.
#[test]
fn next_event_cycle_never_over_reports() {
    let workload = generate(
        Benchmark::Queue,
        &WorkloadParams { threads: 2, init_ops: 60, sim_ops: 12, seed: 3 },
    );
    for scheme in
        [LoggingSchemeKind::Proteus, LoggingSchemeKind::Atom, LoggingSchemeKind::SwPmemPcommit]
    {
        let mut system = System::new(&config(), scheme, &workload).unwrap();
        system.set_fast_forward(true);
        system.set_validate_skips(true);
        system.run().unwrap();
    }
}

/// The engine must actually skip: on a quiescent stretch the next wake
/// point is strictly in the future, and a fast-forwarded run reaches the
/// same completion cycle as a single-stepped one.
#[test]
fn engine_skips_and_lands_on_the_same_final_cycle() {
    let workload = small(Benchmark::Queue);
    let (_, _, now_ff) = observe(&workload, LoggingSchemeKind::Proteus, true);
    let (_, _, now_ss) = observe(&workload, LoggingSchemeKind::Proteus, false);
    assert_eq!(now_ff, now_ss, "completion cycle must not depend on the engine");

    // Wake points are monotone and honoured: from a fresh machine,
    // repeatedly jumping to next_wake() must make progress and never
    // schedule into the past.
    let mut system = System::new(&config(), LoggingSchemeKind::Proteus, &workload).unwrap();
    system.set_fast_forward(true);
    let mut skipped_any = false;
    for _ in 0..10_000 {
        if system.is_done() {
            break;
        }
        let before = system.now();
        let wake = system.next_wake().expect("unfinished machine must have a wake point");
        assert!(wake >= before, "wake point scheduled into the past");
        skipped_any |= wake > before + 1;
        system.run_until(wake.max(before + 1));
    }
    assert!(skipped_any, "a queue workload must contain at least one skippable window");
}

/// Like [`observe`], but exercising the full engine configuration:
/// fast-forward on/off × parallel worker thread count.
fn observe_engine(
    workload: &GeneratedWorkload,
    scheme: LoggingSchemeKind,
    fast_forward: bool,
    threads: usize,
) -> (RunSummary, Vec<proteus_mem::PersistEvent>, u64) {
    let mut system = System::new(&config(), scheme, workload).unwrap();
    system.set_engine(&EngineConfig { fast_forward, threads });
    system.set_record_persist_events(true);
    let summary = system.run().unwrap();
    let timeline = system.persist_timeline().to_vec();
    let now = system.now();
    (summary, timeline, now)
}

/// The parallel quantum engine's determinism pin, across the whole
/// roster: every Table 2 benchmark, the generated ycsb-a preset, and
/// all three contended workloads, under every bench-basket scheme, with
/// fast-forwarding both on and off — 2- and 4-worker runs must be
/// byte-identical (summary, persist timeline, completion cycle) to the
/// sequential reference. Under `--features paranoid` every engine skip
/// inside each quantum is additionally cross-validated by
/// single-stepping.
#[test]
fn parallel_engine_is_invisible_across_the_roster() {
    use proteus_core::scheme::registry;
    use proteus_workgen::roster;

    let rows: Vec<&roster::WorkloadDescriptor> =
        roster::table2().chain(roster::by_cli_name("ycsb-a")).chain(roster::contended()).collect();
    for d in rows {
        // Tiny op counts: the matrix is wide and identity, not
        // throughput, is under test. Contended rows need a few more ops
        // so the threads actually collide on the shared structure.
        let scale = if d.contended { 0.01 } else { 0.001 };
        let params = d.params(2, scale);
        let workload = d.sel().generate(&params);
        for scheme in registry::bench_basket() {
            for fast_forward in [true, false] {
                let reference = observe_engine(&workload, scheme, fast_forward, 1);
                for threads in [2, 4] {
                    let got = observe_engine(&workload, scheme, fast_forward, threads);
                    assert_eq!(
                        reference, got,
                        "{}/{scheme:?} ff={fast_forward} threads={threads}: \
                         parallel run diverged from the sequential reference",
                        d.cli_name
                    );
                }
            }
        }
    }
}

/// Worker oversubscription is safe: asking for more engine threads than
/// the machine has cores (or than the host has CPUs) must neither wedge
/// nor change a single simulated byte.
#[test]
fn engine_thread_oversubscription_is_identical() {
    let workload = small(Benchmark::Queue);
    for scheme in [LoggingSchemeKind::Proteus, LoggingSchemeKind::Incll] {
        let reference = observe_engine(&workload, scheme, true, 1);
        for threads in [3, 8, 64] {
            let got = observe_engine(&workload, scheme, true, threads);
            assert_eq!(reference, got, "{scheme:?} threads={threads}: oversubscribed run diverged");
        }
    }
}
